"""The per-chain market escrow book.

The per-deal runtime publishes one escrow contract per (deal, asset) —
fine for a single deal, hopeless for thousands.  The market instead
publishes **one** :class:`MarketEscrowBook` per chain that holds every
deal's escrows, keyed by ``(deal_id, asset_id)``.

Parties *fund* an internal account once per token (a real token
transfer into the book — the deposit-once-trade-many pattern of a
production exchange), and deals then escrow out of that internal
balance with pure storage operations.  Double-spends are structurally
impossible: an ``open`` debits the internal balance under a ``require``
and reverts when concurrent deals have already claimed the funds —
that revert is exactly the escrow conflict the scheduler resolves
(first open wins, the loser aborts and is refunded).

Settlement is driven by the market coordinator once the commit log on
the coordinator chain has decided the deal: ``commit`` credits every
C-map holder's internal account, ``abort`` refunds every original
depositor (the A-map).  Either way the book's token balance never
moves — only the internal ledger does — so conservation is checkable
at two levels (see :mod:`repro.market.invariants`).

The book holds **non-fungible** escrows too: parties fund unique
tokens (theater tickets) into the book's custody once
(:meth:`MarketEscrowBook.fund_nft` — the NFT analogue of the
deposit-once pattern), the book records the internal owner per token
id, and a deal's ``open`` then *locks* specific token ids.  A second
deal trying to lock an already-locked (or no-longer-owned) token id
reverts — first-committed-wins by block order, exactly like the
fungible over-draw — and settlement moves internal ownership per the
C-map (commit) or back to the depositor (abort).  Conservation for
NFTs is **ownership uniqueness**: every funded token id has exactly
one internal record, either free or locked by exactly one open deal
(checked in :mod:`repro.market.invariants`).
"""

from __future__ import annotations

from repro.chain.contracts import CallContext, Contract
from repro.crypto.keys import Address

# Per-chain lifecycle of one deal's escrows.
OPEN = "open"
COMMITTED = "committed"
ABORTED = "aborted"


class MarketEscrowBook(Contract):
    """Every deal's escrows on one chain, plus the internal accounts."""

    EXPORTS = (
        "fund", "withdraw", "fund_nft", "open", "transfer", "commit", "abort",
    )

    def __init__(self, name: str, coordinator: Address):
        super().__init__(name)
        self.coordinator = coordinator
        # party-facing internal ledger: (address, token) -> free balance
        self.accounts = self.storage("accounts")
        # (deal_id, asset_id) -> (owner, token, amount)   — the A-map
        self.deposits = self.storage("deposits")
        # (deal_id, asset_id) -> tuple[(party, amount), ...] — the C-map
        self.cmap = self.storage("cmap")
        # deal_id -> OPEN | COMMITTED | ABORTED (this chain's view)
        self.deal_state = self.storage("dealState")
        # deal_id -> tuple of asset_ids escrowed on this chain
        self.deal_assets = self.storage("dealAssets")
        # deal_id -> plist recorded at first open
        self.plists = self.storage("plists")
        # --- non-fungible custody ---
        # (token, token_id) -> internal owner, while the token is free
        self.nft_owners = self.storage("nftOwners")
        # (token, token_id) -> deal_id, while locked in an open escrow
        self.nft_locks = self.storage("nftLocks")
        # (deal_id, asset_id) -> (owner, token, token_ids) — the NFT A-map
        self.nft_deposits = self.storage("nftDeposits")
        # (deal_id, asset_id) -> tuple[(token_id, holder), ...] — NFT C-map
        self.nft_cmap = self.storage("nftCmap")
        # deal_id -> tuple of NFT asset_ids escrowed on this chain
        self.nft_deal_assets = self.storage("nftDealAssets")

    # ------------------------------------------------------------------
    # Session funding (once per party per token)
    # ------------------------------------------------------------------
    def fund(self, ctx: CallContext, token: str, amount: int) -> bool:
        """Pull ``amount`` of ``token`` from the caller into the book."""
        ctx.require(amount > 0, "non-positive funding amount")
        ctx.call(
            self, token, "transfer_from",
            owner=ctx.sender, to=self.address, amount=amount,
        )
        key = (ctx.sender, token)
        self.accounts[key] = self.accounts.get(key, 0) + amount
        ctx.emit(self, "Funded", party=ctx.sender, token=token, amount=amount)
        return True

    def withdraw(self, ctx: CallContext, token: str, amount: int) -> bool:
        """Move free internal balance back out to the caller's wallet."""
        ctx.require(amount > 0, "non-positive withdrawal amount")
        key = (ctx.sender, token)
        held = self.accounts.get(key, 0)
        ctx.require(held >= amount, "insufficient free balance")
        self.accounts[key] = held - amount
        ctx.call(self, token, "transfer", to=ctx.sender, amount=amount)
        ctx.emit(self, "Withdrawn", party=ctx.sender, token=token, amount=amount)
        return True

    def fund_nft(self, ctx: CallContext, token: str, token_id: str) -> bool:
        """Pull one unique token from the caller into the book's custody.

        The book becomes the chain-level owner; the caller stays the
        *internal* owner until a committed deal reassigns the token.
        """
        ctx.require(
            self.nft_owners.get((token, token_id)) is None
            and self.nft_locks.get((token, token_id)) is None,
            "token already in custody",
        )
        ctx.call(
            self, token, "transfer_from",
            owner=ctx.sender, to=self.address, token_id=token_id,
        )
        self.nft_owners[(token, token_id)] = ctx.sender
        ctx.emit(self, "FundedNft", party=ctx.sender, token=token,
                 token_id=token_id)
        return True

    # ------------------------------------------------------------------
    # Escrow and tentative transfer
    # ------------------------------------------------------------------
    def _admit(
        self, ctx: CallContext, deal_id: bytes, parties: tuple[Address, ...]
    ) -> None:
        """Shared open-time checks: lifecycle state and plist pinning."""
        state = self.deal_state.get(deal_id, OPEN)
        ctx.require(state == OPEN, "deal already settled on this chain")
        known_plist = self.plists.get(deal_id)
        if known_plist is None:
            self.plists[deal_id] = tuple(parties)
            self.deal_state[deal_id] = OPEN
        else:
            ctx.require(known_plist == tuple(parties), "plist mismatch")

    def open(
        self,
        ctx: CallContext,
        deal_id: bytes,
        asset_id: str,
        token: str,
        parties: tuple[Address, ...],
        amount: int = 0,
        token_ids: tuple[str, ...] = (),
    ) -> bool:
        """Escrow the caller's free balance or free tokens for one asset.

        This is the contention point of the whole market.  Fungible: the
        debit of the internal account reverts when earlier opens (of
        *other* deals) already hold the funds.  Non-fungible: locking a
        token id reverts when another open deal already locked it, or
        when a committed deal moved its internal ownership away from the
        caller (a double-sell).  Both ways it is first-committed-wins,
        enforced by block order.
        """
        ctx.require(bool(amount) != bool(token_ids),
                    "escrow needs an amount xor token ids")
        ctx.require(ctx.sender in parties, "owner not in plist")
        if token_ids:
            return self._open_nft(ctx, deal_id, asset_id, token, parties, token_ids)
        ctx.require(amount > 0, "non-positive escrow amount")
        ctx.require((deal_id, asset_id) not in self.deposits, "asset already escrowed")
        self._admit(ctx, deal_id, parties)
        key = (ctx.sender, token)
        free = self.accounts.get(key, 0)
        ctx.require(free >= amount, "insufficient free balance for escrow")
        self.accounts[key] = free - amount
        self.deposits[(deal_id, asset_id)] = (ctx.sender, token, amount)
        self.cmap[(deal_id, asset_id)] = ((ctx.sender, amount),)
        self.deal_assets[deal_id] = self.deal_assets.get(deal_id, ()) + (asset_id,)
        ctx.emit(self, "Escrowed", deal_id=deal_id, asset_id=asset_id,
                 owner=ctx.sender, amount=amount)
        return True

    def _open_nft(
        self,
        ctx: CallContext,
        deal_id: bytes,
        asset_id: str,
        token: str,
        parties: tuple[Address, ...],
        token_ids: tuple[str, ...],
    ) -> bool:
        """Lock unique tokens the caller internally owns for one asset."""
        ctx.require(
            (deal_id, asset_id) not in self.nft_deposits, "asset already escrowed"
        )
        self._admit(ctx, deal_id, parties)
        for token_id in token_ids:
            ctx.require(
                self.nft_locks.get((token, token_id)) is None,
                f"token {token_id!r} locked by another deal",
            )
            ctx.require(
                self.nft_owners.get((token, token_id)) == ctx.sender,
                f"token {token_id!r} not owned by caller",
            )
        for token_id in token_ids:
            del self.nft_owners[(token, token_id)]
            self.nft_locks[(token, token_id)] = deal_id
        self.nft_deposits[(deal_id, asset_id)] = (
            ctx.sender, token, tuple(token_ids)
        )
        self.nft_cmap[(deal_id, asset_id)] = tuple(
            (token_id, ctx.sender) for token_id in token_ids
        )
        self.nft_deal_assets[deal_id] = (
            self.nft_deal_assets.get(deal_id, ()) + (asset_id,)
        )
        ctx.emit(self, "EscrowedNft", deal_id=deal_id, asset_id=asset_id,
                 owner=ctx.sender, token_ids=tuple(token_ids))
        return True

    def transfer(
        self, ctx: CallContext, deal_id: bytes, asset_id: str,
        to: Address, amount: int = 0, token_ids: tuple[str, ...] = (),
    ) -> bool:
        """Tentatively move escrowed value or tokens to ``to``."""
        ctx.require(bool(amount) != bool(token_ids),
                    "transfer needs an amount xor token ids")
        ctx.require(self.deal_state.get(deal_id) == OPEN, "deal not open here")
        plist = self.plists[deal_id]
        ctx.require(ctx.sender in plist, "giver not in plist")
        ctx.require(to in plist, "receiver not in plist")
        if token_ids:
            ctx.require(
                (deal_id, asset_id) in self.nft_deposits, "asset not escrowed"
            )
            holdings = dict(self.nft_cmap[(deal_id, asset_id)])
            for token_id in token_ids:
                ctx.require(
                    holdings.get(token_id) == ctx.sender,
                    f"token {token_id!r} not tentatively held by sender",
                )
                holdings[token_id] = to
            self.nft_cmap[(deal_id, asset_id)] = tuple(holdings.items())
            ctx.emit(self, "TentativeTransfer", deal_id=deal_id,
                     asset_id=asset_id, giver=ctx.sender, receiver=to,
                     token_ids=tuple(token_ids))
            return True
        ctx.require(amount > 0, "non-positive transfer amount")
        ctx.require((deal_id, asset_id) in self.deposits, "asset not escrowed")
        holdings = dict(self.cmap[(deal_id, asset_id)])
        held = holdings.get(ctx.sender, 0)
        ctx.require(held >= amount, "insufficient tentative balance")
        holdings[ctx.sender] = held - amount
        holdings[to] = holdings.get(to, 0) + amount
        self.cmap[(deal_id, asset_id)] = tuple(
            (party, value) for party, value in holdings.items() if value > 0
        )
        ctx.emit(self, "TentativeTransfer", deal_id=deal_id, asset_id=asset_id,
                 giver=ctx.sender, receiver=to, amount=amount)
        return True

    # ------------------------------------------------------------------
    # Settlement (coordinator only, after the commit log decided)
    # ------------------------------------------------------------------
    def commit(self, ctx: CallContext, deal_id: bytes) -> bool:
        """Release every escrow of the deal per its C-map."""
        ctx.require(ctx.sender == self.coordinator, "only the coordinator settles")
        ctx.require(deal_id in self.deal_state, "deal unknown on this chain")
        ctx.require(self.deal_state[deal_id] == OPEN, "deal already settled")
        for asset_id in self.deal_assets.get(deal_id, ()):
            _, token, _ = self.deposits[(deal_id, asset_id)]
            for party, amount in self.cmap[(deal_id, asset_id)]:
                key = (party, token)
                self.accounts[key] = self.accounts.get(key, 0) + amount
        for asset_id in self.nft_deal_assets.get(deal_id, ()):
            _, token, _ = self.nft_deposits[(deal_id, asset_id)]
            for token_id, holder in self.nft_cmap[(deal_id, asset_id)]:
                del self.nft_locks[(token, token_id)]
                self.nft_owners[(token, token_id)] = holder
        self.deal_state[deal_id] = COMMITTED
        ctx.emit(self, "DealCommitted", deal_id=deal_id)
        return True

    def abort(self, ctx: CallContext, deal_id: bytes) -> bool:
        """Refund every escrow of the deal per its A-map.

        Aborting a deal this chain has never seen is allowed and
        records the terminal state, so a delayed ``open`` that lands
        after the abort bounces instead of trapping funds.
        """
        ctx.require(ctx.sender == self.coordinator, "only the coordinator settles")
        state = self.deal_state.get(deal_id, OPEN)
        ctx.require(state == OPEN, "deal already settled")
        for asset_id in self.deal_assets.get(deal_id, ()):
            owner, token, amount = self.deposits[(deal_id, asset_id)]
            key = (owner, token)
            self.accounts[key] = self.accounts.get(key, 0) + amount
        for asset_id in self.nft_deal_assets.get(deal_id, ()):
            owner, token, token_ids = self.nft_deposits[(deal_id, asset_id)]
            for token_id in token_ids:
                del self.nft_locks[(token, token_id)]
                self.nft_owners[(token, token_id)] = owner
        self.deal_state[deal_id] = ABORTED
        ctx.emit(self, "DealAborted", deal_id=deal_id)
        return True

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Copy the book's full state for replication/recovery."""
        return self.snapshot_state()

    def restore(self, state: dict[str, dict]) -> None:
        """Reset the book to a :meth:`snapshot` (operator-level)."""
        self.restore_state(state)

    # ------------------------------------------------------------------
    # Off-chain inspection (scheduler, invariants, tests)
    # ------------------------------------------------------------------
    def peek_account(self, party: Address, token: str) -> int:
        """A party's free internal balance (unmetered)."""
        return self.accounts.peek((party, token), 0)

    def peek_deal_state(self, deal_id: bytes) -> str | None:
        """This chain's lifecycle state for a deal (unmetered)."""
        return self.deal_state.peek(deal_id)

    def peek_escrowed_total(self, token: str) -> int:
        """Total still locked in *open* escrows of ``token`` (unmetered)."""
        total = 0
        for (deal_id, _), (_, asset_token, amount) in self.deposits.items():
            if asset_token != token:
                continue
            if self.deal_state.peek(deal_id) == OPEN:
                total += amount
        return total

    def peek_internal_total(self, token: str) -> int:
        """Sum of all internal account balances of ``token`` (unmetered)."""
        return sum(
            balance
            for (_, account_token), balance in self.accounts.items()
            if account_token == token
        )

    def peek_open_deal_ids(self) -> set[bytes]:
        """Deal ids that still hold *open* escrows on this book.

        The cross-shard invariant sweep uses this to prove that a deal
        settled by its home shard's commit log left no value locked on
        any other shard's book: first-committed-wins resolution must
        terminate across books, not only on the coordinator chain.
        """
        open_ids: set[bytes] = set()
        for storage in (self.deposits, self.nft_deposits):
            for (deal_id, _asset_id), _record in storage.items():
                if self.deal_state.peek(deal_id) == OPEN:
                    open_ids.add(deal_id)
        return open_ids

    def peek_nft_owner(self, token: str, token_id: str):
        """The internal owner of a free (unlocked) token id (unmetered)."""
        return self.nft_owners.peek((token, token_id))

    def peek_nft_lock(self, token: str, token_id: str):
        """The deal currently locking a token id, if any (unmetered)."""
        return self.nft_locks.peek((token, token_id))

    def peek_nft_records(self, token: str) -> dict[str, tuple[str, object]]:
        """Every custody record of ``token``: token_id -> (kind, ref).

        ``kind`` is ``"free"`` (ref = internal owner) or ``"locked"``
        (ref = the locking deal id).  A token id must never appear in
        both maps — that is the ownership-uniqueness invariant.
        """
        records: dict[str, tuple[str, object]] = {}
        for (owner_token, token_id), owner in self.nft_owners.items():
            if owner_token == token:
                records[token_id] = ("free", owner)
        for (lock_token, token_id), deal_id in self.nft_locks.items():
            if lock_token != token:
                continue
            if token_id in records:
                records[token_id] = ("conflict", deal_id)
            else:
                records[token_id] = ("locked", deal_id)
        return records
