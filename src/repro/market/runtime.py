"""The market runtime: a thin coordinator over per-shard runtimes.

This module is the carve of the old 1,200-line scheduler god-object
into an explicit, message-passing architecture:

* :class:`ShardRuntime` — owns exactly one shard's state: its chains,
  :class:`~repro.market.mempool.StepMempool`\\ s, escrow books, its
  :class:`~repro.market.commitlog.MarketCommitLog`, its certified
  blockchain and (when replicated) its replica group.  A runtime
  never reaches into another shard; everything it does is a reaction
  to a typed message.
* :class:`MarketCoordinator` — the thin coordinator: admission, the
  deal phase engine (receipt routing), and reporting.  It talks to
  the runtimes *only* through the frozen payload types of
  :mod:`repro.market.messages`, wrapped in
  :class:`~repro.sim.network.Envelope` and carried by a
  :class:`~repro.sim.network.LocalBus`.
* :class:`VerifyService` — the verification plane: per-seal signature
  batches travel as ``SealBatch`` messages keyed ``(chain_id, seq)``
  into the shared :class:`~repro.consensus.validators.VerifyAggregator`.
* :class:`ExecutionBackend` — the seam the message API buys.
  :class:`InlineBackend` runs everything in-process (byte-identical
  to the historical scheduler).  :class:`ProcessBackend` hosts the
  verification work of each shard in its own worker process.

**The barrier protocol.**  Messages are exchanged on simulated time:
all messages for tick *t* are delivered before any runtime advances
past *t*.  Inline, the bus delivers synchronously, so the barrier is
trivially satisfied.  In the ``processes`` backend every worker
replays the same deterministic simulation — identical event heap,
identical messages, identical randomness — and the barrier is the
verdict exchange: worker *w* genuinely verifies only the seal batches
of chains owned by shard *w* (the expensive part of a market run) and
publishes ``SealVerdict``\\ s; a worker that reaches a foreign batch
at tick *t* blocks until the owner's verdict for *t* arrives.  No
worker can pass a seal boundary before every shard's verification for
that boundary is done, which is exactly the barrier — and because a
merged Schnorr batch check succeeds iff every batch in it is
individually valid (soundness error 2⁻⁶⁴, and the failure path falls
back to per-batch isolation in both modes), the partitioned verdicts
equal the merged ones and every worker's run — report, fingerprint,
trace — is byte-identical to the inline run.  The backend proves it
per run: all workers' fingerprints must agree.

**Chaos hardening.**  With a :class:`~repro.sim.chaos.ChaosPlan` in
the config the bus becomes a :class:`~repro.sim.network.ChaosBus`
(seeded drop/duplicate/delay/reorder plus ack/resend at-least-once
delivery), every handler below guards itself with a
:class:`~repro.market.messages.DedupWindow`, the replication layer
ships deltas reliably under a :class:`~repro.sim.faults.MessageStorm`,
and the ``processes`` backend supervises its workers — heartbeats,
stall detection, restart with a state-digest proof, and graceful
degradation to inline execution.  Chaos off constructs the plain bus
and schedules nothing extra, so default runs stay byte-identical.

The public entry point is :func:`repro.market.open_market`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.analysis.tables import render_table
from repro.chain.contracts import Contract
from repro.chain.ledger import Chain
from repro.chain.tokens import FungibleToken, NonFungibleToken
from repro.chain.tx import Receipt, Transaction
from repro.consensus.bft import CertifiedBlockchain
from repro.consensus.validators import ValidatorSet, VerifyAggregator
from repro.core.deal import (
    PROTOCOL_CBC,
    PROTOCOL_TIMELOCK,
    PROTOCOL_UNANIMITY,
    DealSpec,
)
from repro.crypto.hashing import tagged_hash
from repro.crypto.keys import Address, KeyPair, Wallet
from repro.crypto.schnorr import (
    batch_verify as schnorr_batch_verify,
    batch_verify_many as schnorr_batch_verify_many,
)
from repro.errors import MarketError
from repro.market.book import MarketEscrowBook
from repro.market.commitlog import MarketCommitLog
from repro.market.fees import FeeLedger, make_seal_policy
from repro.market.invariants import check_market_invariants
from repro.market.mempool import OrderLedger, StepMempool
from repro.market.messages import (
    BlockReceipts,
    CrossShardEscrowOp,
    DealDecided,
    DedupWindow,
    Envelope,
    SealBatch,
    SealVerdict,
    SubmitOrder,
    TelemetrySpan,
    VoteFanout,
)
from repro.market.order import SignedDealOrder, shard_of_deal
from repro.market.protocols import CbcDealDriver, DealDriver, TimelockDealDriver
from repro.market.replication import ReplicationLayer
from repro.sim.faults import MessageStorm
from repro.sim.network import ChaosBus, LocalBus
from repro.sim.simulator import Simulator

BOOK_CONTRACT = "market-book"
COMMIT_LOG_CONTRACT = "market-commitlog"

_ABORT_RETRY_LIMIT = 5

COORDINATOR_ENDPOINT = "coordinator"
VERIFY_ENDPOINT = "verify"

# Exit code a WorkerKill-felled worker dies with, so the supervisor can
# tell an injected kill from an organic crash.
_WORKER_KILL_EXIT = 73


def shard_endpoint(shard: int) -> str:
    """The bus endpoint name of one shard's runtime."""
    return f"shard-{shard}"


class DealPhase(Enum):
    """Lifecycle of one deal inside the market."""

    REGISTERING = "registering"
    ESCROW = "escrow"
    TRANSFER = "transfer"
    VOTING = "voting"
    SETTLING = "settling"
    COMMITTED = "committed"
    ABORTED = "aborted"
    REJECTED = "rejected"


_TERMINAL = {DealPhase.COMMITTED, DealPhase.ABORTED, DealPhase.REJECTED}


@dataclass
class _DealRun:
    """Coordinator-internal state machine for one deal."""

    order: SignedDealOrder
    phase: DealPhase = DealPhase.REGISTERING
    opens_expected: int = 0
    opens_done: int = 0
    transfers_expected: int = 0
    transfers_done: int = 0
    decided: str | None = None
    abort_requested: bool = False
    abort_retries: int = 0
    conflict: bool = False
    reason: str = ""
    claim_chains: tuple[str, ...] = ()
    settled_chains: set = field(default_factory=set)
    finished_at: float | None = None
    # §5 sore loser: a timelock deal whose escrows settled non-uniformly
    # (released on one chain, refunded at deadline on another).  Only
    # crash-gated sealing can produce it; fault-free runs treat it as
    # an invariant violation.
    sore_loser: bool = False
    # Fee market: a base-fee mempool evicted one of the deal's steps
    # (its co-signed bid can never clear the base-fee floor).  A
    # measured outcome like sore losers, never a safety violation.
    priced_out: bool = False
    patience_handle: object = None
    # Sharding: the deal's home shard (where it registers and votes)
    # and whether its escrows straddle books owned by other shards.
    home_shard: int = 0
    cross_shard: bool = False
    # Timelock/CBC runs delegate their phase logic to a protocol driver
    # (repro.market.protocols); unanimity runs keep driver = None.
    driver: DealDriver | None = None

    @property
    def protocol(self) -> str:
        return self.order.spec.protocol

    @property
    def terminal(self) -> bool:
        return self.phase in _TERMINAL


@dataclass
class MarketConfig:
    """Knobs of one market run (all times in simulator ticks)."""

    block_interval: float = 1.0
    patience: float = 60.0
    max_txs_per_block: int = 512
    horizon: float | None = None
    max_events: int = 20_000_000
    # Re-check every conservation invariant after every block (O(state)
    # per block — for tests, not for 5000-deal runs).
    check_invariants_per_block: bool = False
    # §5 deadline unit Δ for timelock deals.  A direct (path length 1)
    # vote must execute before t0 + Δ; the market pipeline needs ~3
    # block intervals from registration to the vote block, so Δ must
    # comfortably exceed that plus any mempool backlog.
    timelock_delta: float = 8.0
    # Byzantine tolerance of the market's shared CBC (3f+1 validators).
    cbc_f: int = 1
    # Cross-block verify aggregation: merge the order-signature batches
    # of every block sealing at one boundary into a single
    # multi-exponentiation (up to verify_max_blocks block batches per
    # flush).  Wall-clock only — verdicts land at the same simulated
    # instant, so decisions and reports are byte identical; the off
    # switch exists for the equivalence tests that prove exactly that.
    verify_aggregation: bool = True
    verify_max_blocks: int = 8
    # Replication (repro.market.replication): each shard becomes a
    # replica group of this size.  The layer is only constructed when
    # factor > 1 or a fault plan is supplied, so the default market
    # runs byte-identical to the unreplicated layout.
    replication_factor: int = 1
    # A repro.sim.faults.FaultPlan: message faults install on the
    # replication network, ReplicaCrash/ReplicaRecover process faults
    # install on the replication layer.
    fault_plan: object | None = None
    # Δ of the dedicated replication network (delta shipping + acks).
    replication_delta: float = 0.4
    # Detection delay before a crashed leader's shard fails over.
    failover_timeout: float = 2.0
    # A repro.sim.chaos.ChaosPlan, or None.  An active market policy
    # swaps the plain LocalBus for a ChaosBus (seeded chaos +
    # at-least-once delivery); an active replication policy storms the
    # delta network and switches the layer to reliable shipping.  None
    # (or an all-zero plan) constructs the exact chaos-free objects.
    chaos: object | None = None
    # Block-space economics (repro.market.fees): how every mempool
    # sells its block slots.  "fifo" keeps the historical drain with
    # zero fee machinery constructed (make_seal_policy returns None),
    # so default reports are byte-identical to a build without fees;
    # "first_price" seals highest-bid-first; "base_fee" runs the
    # EIP-1559-style per-chain controller below.
    seal_policy: str = "fifo"
    base_fee_initial: float = 1.0
    base_fee_floor: float = 1.0
    base_fee_adjust: float = 0.125
    base_fee_target: float = 0.5
    # Heterogeneous block space: {shard: max_txs_per_block} overrides.
    # Chains of a listed shard seal at that cap; every other chain
    # keeps the global max_txs_per_block.  None means homogeneous.
    shard_block_caps: dict | None = None
    # A repro.telemetry.Telemetry instance (one per run), or None.
    # Telemetry is strictly observational — it draws no randomness,
    # schedules no events, and mutates no market state — so report
    # bytes are identical either way; every instrumentation site in
    # the runtime guards on ``telemetry is not None`` (one attribute
    # check on the off path).
    telemetry: object | None = None


@dataclass
class MarketReport:
    """The observable outcome of one market run (simulation units only)."""

    deals: int
    committed: int
    aborted: int
    rejected: int
    stuck: int
    conflicts: int
    timeouts: int
    latency_p50: float
    latency_p90: float
    latency_p99: float
    end_time: float
    deals_per_kilotick: float
    chains: int
    blocks: int
    txs_executed: int
    txs_reverted: int
    max_mempool_depth: int
    events_processed: int
    invariant_violations: tuple[str, ...] = ()
    outcome_log: tuple = ()
    # (protocol, committed, aborted, rejected, p50, p90, p99) rows,
    # one per protocol present in the workload, sorted by protocol.
    per_protocol: tuple = ()
    stale_proofs_rejected: int = 0
    timelock_refund_sweeps: int = 0
    # Sorted (name, count) rows from the market's VerifyAggregator —
    # deterministic simulation counters, but deliberately outside
    # render() and fingerprint() so toggling aggregation can never
    # change report bytes.  The E16 benchmark surfaces them in its own
    # aggregation table and in BENCH_market.json.
    verify_stats: tuple = ()
    # Sharding: how many coordinator shards the market ran with, and
    # how many deals straddled books owned by more than one shard.
    # Rendered only when shards > 1, so unsharded reports stay
    # byte-identical to the pre-sharding market.
    shards: int = 1
    cross_shard_deals: int = 0
    cross_shard_committed: int = 0
    # Replication/fault axis (PR 6): rendered only when the layer ran
    # and did something, so fault-free unreplicated reports keep their
    # exact bytes.  replication_stats mirrors verify_stats: sorted
    # counter rows, deliberately outside render() and fingerprint().
    replication_factor: int = 1
    faults_injected: int = 0
    recoveries: int = 0
    failovers: int = 0
    availability: float = 1.0
    replication_stats: tuple = ()
    # Fault/network observability (rendered inside the same gated
    # block): per-fault rows from FaultPlan.stats() — each a tuple of
    # sorted (name, value) items — and the replication network's
    # delivery counters.  Empty on fault-free unreplicated runs, so
    # those reports keep their exact bytes.
    fault_stats: tuple = ()
    network_stats: tuple = ()
    # §5 sore losers: timelock deals whose escrows settled mixed
    # (released here, deadline-refunded there) because crash faults
    # gated sealing mid-deal.  Always 0 in fault-free runs, where a
    # mixed settlement is an invariant violation instead.
    sore_losers: int = 0
    # Shard-bus delivery counters (sorted rows, outside render() and
    # fingerprint() like verify_stats): how many typed envelopes the
    # coordinator and runtimes exchanged.  Observability only.
    bus_stats: tuple = ()
    # Fee market (PR 10): the sealing policy the run priced block
    # space with, how many deals it priced out of the market entirely
    # (a measured outcome, like sore losers), and the fee units the
    # sealed traffic paid.  Rendered only under a non-FIFO policy, so
    # default reports keep their exact bytes; fee_stats mirrors
    # verify_stats (sorted counter rows outside render/fingerprint).
    seal_policy: str = "fifo"
    fee_priced_out: int = 0
    fees_accrued: int = 0
    fee_stats: tuple = ()

    @property
    def abort_rate(self) -> float:
        """Aborted fraction of all terminally settled deals."""
        settled = self.committed + self.aborted
        return self.aborted / settled if settled else 0.0

    @property
    def cross_shard_fraction(self) -> float:
        """Cross-shard slice of all spawned deals."""
        return self.cross_shard_deals / self.deals if self.deals else 0.0

    @property
    def sore_loser_rate(self) -> float:
        """Sore-loser slice of all terminally settled deals."""
        settled = self.committed + self.aborted
        return self.sore_losers / settled if settled else 0.0

    def aggregator_merge_rate(self) -> float:
        """Fraction of enqueued block batches that merged with others.

        The measurable sharding win at the verify layer: with one
        order-carrying shard this is exactly 0.0; with M shards
        sealing on the same boundary it approaches (M-1)/M.
        """
        stats = dict(self.verify_stats)
        batches = stats.get("batches", 0)
        return stats.get("merged_batches", 0) / batches if batches else 0.0

    def committed_by_protocol(self) -> dict[str, int]:
        """Committed deal count per protocol (empty rows omitted)."""
        return {row[0]: row[1] for row in self.per_protocol}

    def protocol_outcome_rows(self, include_p90: bool = True) -> list[list]:
        """The per-protocol rows, formatted for a render_table call.

        The single place that knows the ``per_protocol`` tuple layout —
        both the report's own table and the E16 benchmark table build
        on it.
        """
        rows = []
        for protocol, committed, aborted, rejected, p50, p90, p99 in self.per_protocol:
            row = [protocol, committed, aborted, rejected, f"{p50:.2f}"]
            if include_p90:
                row.append(f"{p90:.2f}")
            row.append(f"{p99:.2f}")
            rows.append(row)
        return rows

    def fingerprint(self) -> str:
        """A digest of every deal's outcome — the determinism witness."""
        parts = [b"repro/market/report"]
        for index, protocol, outcome, reason, latency in self.outcome_log:
            parts.append(
                f"{index}:{protocol}:{outcome}:{reason}:{latency:.9f}".encode("utf-8")
            )
        return tagged_hash("repro/market/fingerprint", b"|".join(parts)).hex()[:32]

    def render(self) -> str:
        """Paper-style summary table (deterministic bytes)."""
        rows = [
            ["deals spawned", self.deals],
            ["committed", self.committed],
            ["aborted", self.aborted],
            ["rejected (forged orders)", self.rejected],
            ["stuck (non-terminal)", self.stuck],
            ["escrow conflicts", self.conflicts],
            ["patience timeouts", self.timeouts],
            ["stale proofs rejected", self.stale_proofs_rejected],
            ["abort rate", f"{self.abort_rate:.1%}"],
            ["commit latency p50 (ticks)", f"{self.latency_p50:.2f}"],
            ["commit latency p90 (ticks)", f"{self.latency_p90:.2f}"],
            ["commit latency p99 (ticks)", f"{self.latency_p99:.2f}"],
            ["horizon (chain ticks)", f"{self.end_time:.1f}"],
            ["throughput (deals / 1000 ticks)", f"{self.deals_per_kilotick:.1f}"],
            ["chains", self.chains],
        ]
        if self.shards > 1:
            rows += [
                ["coordinator shards", self.shards],
                ["cross-shard deals", self.cross_shard_deals],
                ["cross-shard committed", self.cross_shard_committed],
                ["cross-shard fraction", f"{self.cross_shard_fraction:.1%}"],
            ]
        if (
            self.replication_factor > 1
            or self.faults_injected
            or self.failovers
            or self.recoveries
        ):
            rows += [
                ["replication factor", self.replication_factor],
                ["replica crashes injected", self.faults_injected],
                ["failovers", self.failovers],
                ["recoveries", self.recoveries],
                ["availability", f"{self.availability:.3%}"],
                ["sore losers (mixed timelock)", self.sore_losers],
            ]
            if self.network_stats:
                net = dict(self.network_stats)
                rows += [
                    ["replication msgs delivered", net.get("delivered", 0)],
                    ["replication msgs dropped", net.get("dropped", 0)],
                    ["replication msgs delayed (faults)",
                     net.get("filter_delayed", 0)],
                ]
            if self.fault_stats:
                fired = dropped = duplicated = 0
                kinds: dict[str, int] = {}
                for row in self.fault_stats:
                    record = dict(row)
                    kind = record.get("kind", "?")
                    kinds[kind] = kinds.get(kind, 0) + 1
                    fired += record.get("crashes", 0)
                    fired += record.get("recoveries", 0)
                    fired += record.get("kills", 0)
                    dropped += record.get("dropped", 0)
                    duplicated += record.get("duplicated", 0)
                plan = ", ".join(
                    f"{kind} x{count}" for kind, count in sorted(kinds.items())
                )
                rows += [
                    ["fault plan", plan],
                    ["fault firings (crash+recover+kill)", fired],
                    ["fault msg drops", dropped],
                    ["fault msg dups", duplicated],
                ]
        bus = dict(self.bus_stats)
        if "chaos_dropped" in bus:
            # Only the ChaosBus carries these keys, so chaos-off
            # reports render byte-identically to a chaos-free build.
            rows += [
                ["chaos msgs dropped", bus["chaos_dropped"]],
                ["chaos msgs duplicated", bus["chaos_duplicated"]],
                ["chaos msgs delayed", bus["chaos_delayed"]],
                ["chaos msgs reordered", bus["chaos_reordered"]],
                ["at-least-once resends", bus["resends"]],
                ["duplicates suppressed", bus["dup_suppressed"]],
            ]
        if "deferred" in bus or "defer_abandoned" in bus:
            # Causal-deferral outcomes (reordering bus only): how many
            # early-arriving steps were parked, and how many hit the
            # retry cap and were abandoned to the patience timeout.
            # The keys only exist once a runtime actually deferred, so
            # in-order runs keep their exact bytes.
            rows += [
                ["escrow ops deferred (causal)", bus.get("deferred", 0)],
                ["escrow ops abandoned (defer cap)",
                 bus.get("defer_abandoned", 0)],
            ]
        if self.seal_policy != "fifo":
            fees = dict(self.fee_stats)
            rows += [
                ["sealing policy", self.seal_policy],
                ["deals fee-priced-out", self.fee_priced_out],
                ["fee units accrued", self.fees_accrued],
                ["steps fee-evicted", fees.get("fee_evicted", 0)],
            ]
        rows += [
            ["blocks produced", self.blocks],
            ["transactions executed", self.txs_executed],
            ["transactions reverted", self.txs_reverted],
            ["max mempool depth", self.max_mempool_depth],
            ["conservation violations", len(self.invariant_violations)],
            ["fingerprint", self.fingerprint()],
        ]
        table = render_table(["measure", "value"], rows, title="Market run")
        if len(self.per_protocol) <= 1:
            return table
        return table + "\n" + render_table(
            ["protocol", "committed", "aborted", "rejected",
             "p50 (ticks)", "p90 (ticks)", "p99 (ticks)"],
            self.protocol_outcome_rows(),
            title="Per-protocol outcomes",
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class VerifyService:
    """The verification plane: seal batches in, verdicts out.

    Every mempool hands its per-seal merged signature batch here; the
    service assigns the batch its ``(chain_id, seq)`` key, posts it
    over the bus as a :class:`~repro.market.messages.SealBatch` (so
    the plane's traffic shows up in the bus delivery stats like every
    other message), and routes it into the shared
    :class:`~repro.consensus.validators.VerifyAggregator` — or, when
    aggregation is off, verifies it on the spot.  The settle callback
    is held out-of-band keyed by the batch key, because callbacks
    never cross a process boundary; the key is the whole wire
    identity, which is what lets the ``processes`` backend partition
    verification by the batch's owner shard.
    """

    def __init__(self, market: "MarketCoordinator"):
        self.market = market
        self._seq: dict[str, int] = {}
        self._settles: dict[tuple[str, int], object] = {}
        self._dedup = DedupWindow(stats=market.bus.stats)
        market.bus.register(VERIFY_ENDPOINT, self._on_envelope)

    def submit(self, chain_id: str, items: list, settle) -> None:
        """Queue one sealed block's signature batch for verification."""
        seq = self._seq.get(chain_id, 0) + 1
        self._seq[chain_id] = seq
        key = (chain_id, seq)
        self._settles[key] = settle
        shard = self.market.chain_shard[chain_id]
        self.market.bus.post(
            shard_endpoint(shard),
            VERIFY_ENDPOINT,
            shard,
            SealBatch(chain_id=chain_id, seq=seq, items=tuple(items)),
        )

    def _on_envelope(self, envelope: Envelope) -> None:
        if self._dedup.duplicate(envelope):
            return
        batch: SealBatch = envelope.payload
        key = (batch.chain_id, batch.seq)
        settle = self._settles.pop(key, None)
        if settle is None:  # replayed batch already settled
            return
        owner = self.market.chain_shard[batch.chain_id]
        items = list(batch.items)
        aggregator = self.market.verify_aggregator
        if aggregator is not None:
            aggregator.enqueue(items, settle, key=key, owner=owner)
            return
        verifier = self.market.verifier
        if verifier is not None:
            settle(verifier.verify_one(key, owner, items))
        else:
            settle(schnorr_batch_verify(items))


class ShardRuntime:
    """One shard's state and its message handlers.

    Owns the shard's chains (home/coordinator chain first), fungible
    and NFT tokens, escrow books, step mempools, commit log, certified
    blockchain, and replica group.  The coordinator never submits a
    transaction to a shard's mempool directly: everything arrives as a
    typed envelope through :meth:`handle`, and everything the shard
    observes (sealed-block receipts) leaves as a
    :class:`~repro.market.messages.BlockReceipts` envelope back to the
    coordinator.
    """

    def __init__(self, market: "MarketCoordinator", shard: int):
        self.market = market
        self.shard = shard
        self.home_chain_id = market.shard_home_chain[shard]
        self.chains: dict[str, Chain] = {}
        self.tokens: dict[str, FungibleToken] = {}
        self.nft_tokens: dict[str, NonFungibleToken] = {}
        self.books: dict[str, MarketEscrowBook] = {}
        self.mempools: dict[str, StepMempool] = {}
        self.commit_log: MarketCommitLog | None = None
        self.cbc: CertifiedBlockchain | None = None
        self.replica_group = None  # set by the ReplicationLayer
        self.dedup = DedupWindow(stats=market.bus.stats)

    # ------------------------------------------------------------------
    # Construction (driven by the coordinator, in global chain order so
    # the simulator's event heap is byte-identical to the historical
    # single-object layout)
    # ------------------------------------------------------------------
    def add_chain(self, chain_id: str) -> Chain:
        """Build one of this shard's chains and its market plumbing."""
        market = self.market
        workload, config = market.workload, market.config
        chain = Chain(
            chain_id, market.simulator, market.wallet,
            block_interval=config.block_interval,
        )
        self.chains[chain_id] = chain
        market.chains[chain_id] = chain
        token = FungibleToken(workload.tokens[chain_id])
        chain.publish(token)
        self.tokens[chain_id] = token
        market.tokens[chain_id] = token
        nft_name = getattr(workload, "nft_tokens", {}).get(chain_id)
        if nft_name is not None:
            nft_token = NonFungibleToken(nft_name)
            chain.publish(nft_token)
            self.nft_tokens[chain_id] = nft_token
            market.nft_tokens[chain_id] = nft_token
        book = MarketEscrowBook(BOOK_CONTRACT, market.coordinator.address)
        chain.publish(book)
        self.books[chain_id] = book
        market.books[chain_id] = book
        # Per-shard heterogeneous block space: a shard listed in
        # shard_block_caps seals all its chains at that cap.  The
        # sealing policy is per chain (base-fee state never leaks
        # across chains); "fifo" yields None and the historical drain.
        caps = config.shard_block_caps or {}
        mempool = StepMempool(
            chain,
            market.wallet,
            market.order_ledger,
            max_txs_per_block=caps.get(self.shard, config.max_txs_per_block),
            on_order_rejected=market._on_order_rejected,
            aggregator=market.verify_aggregator,
            telemetry=market.telemetry,
            verify_service=market.verify_service,
            policy=make_seal_policy(config, market.fee_ledger),
            on_step_evicted=market._on_step_evicted,
        )
        self.mempools[chain_id] = mempool
        market.mempools[chain_id] = mempool
        chain.subscribe(self._on_block)
        return chain

    def install_commit_log(self, name: str, shards: int) -> MarketCommitLog:
        """Publish this shard's commit log on its home chain."""
        log = MarketCommitLog(
            name, self.market.coordinator.address, shard=self.shard, shards=shards
        )
        self.chains[self.home_chain_id].publish(log)
        self.commit_log = log
        return log

    # ------------------------------------------------------------------
    # Outbound: sealed blocks flow back to the coordinator
    # ------------------------------------------------------------------
    def _on_block(self, chain: Chain, block) -> None:
        self.market.bus.post(
            shard_endpoint(self.shard),
            COORDINATOR_ENDPOINT,
            self.shard,
            BlockReceipts(
                chain_id=chain.chain_id,
                height=block.height,
                receipts=tuple(block.receipts),
            ),
        )

    # ------------------------------------------------------------------
    # Inbound: the coordinator's typed messages
    # ------------------------------------------------------------------
    # Causal deferral: under a reordering bus, a step transaction can
    # land before the per-deal escrow contract it targets has been
    # published.  The runtime parks such messages and retries on a
    # short cadence; a message that never becomes deliverable (its
    # publish lost with the deal) is abandoned after the cap and the
    # deal resolves through the ordinary patience timeout.
    _DEFER_INTERVAL = 0.5
    _DEFER_LIMIT = 200

    def handle(self, envelope: Envelope) -> None:
        """Dispatch one coordinator envelope to the owning machinery."""
        if self.dedup.duplicate(envelope):
            return
        self._dispatch(envelope.payload, 0)

    def _dispatch(self, message, deferrals: int) -> None:
        if isinstance(message, SubmitOrder):
            self._handle_submit_order(message)
        elif isinstance(message, VoteFanout):
            if not self.chains[message.chain_id].has_contract(
                message.tx.contract
            ):
                self._defer(message, deferrals)
                return
            self.mempools[message.chain_id].submit(message.tx, message.deal_id)
        elif isinstance(message, CrossShardEscrowOp):
            if message.op == "publish":
                self.chains[message.chain_id].publish(message.contract)
            else:
                if not self.chains[message.chain_id].has_contract(
                    message.tx.contract
                ):
                    self._defer(message, deferrals)
                    return
                self.mempools[message.chain_id].submit(
                    message.tx, message.deal_id
                )
        elif isinstance(message, DealDecided):
            self._handle_decided(message)
        else:  # pragma: no cover - vocabulary is closed
            raise MarketError(
                f"shard {self.shard}: unknown message {type(message).__name__}"
            )

    def _defer(self, message, deferrals: int) -> None:
        stats = self.market.bus.stats
        if deferrals >= self._DEFER_LIMIT:
            stats["defer_abandoned"] = stats.get("defer_abandoned", 0) + 1
            return
        stats["deferred"] = stats.get("deferred", 0) + 1
        self.market.simulator.schedule(
            self._DEFER_INTERVAL,
            lambda: self._dispatch(message, deferrals + 1),
            label=f"shard{self.shard}/defer",
        )

    def _handle_submit_order(self, message: SubmitOrder) -> None:
        order = message.order
        self.mempools[self.home_chain_id].submit(
            Transaction(
                sender=self.market.coordinator.address,
                contract=self.commit_log.name,
                method="register",
                args={"deal_id": message.deal_id, "parties": order.spec.parties},
                phase="market/register",
            ),
            message.deal_id,
            order=order,
        )

    def _handle_decided(self, message: DealDecided) -> None:
        self.mempools[message.chain_id].submit(
            Transaction(
                sender=self.market.coordinator.address,
                contract=BOOK_CONTRACT,
                method=message.method,
                args={"deal_id": message.deal_id},
                phase=f"market/{message.method}-claim",
            ),
            message.deal_id,
        )


class MarketCoordinator:
    """Build one market and run a workload of concurrent deals on it.

    The coordinator owns admission, the deal phase engine, and
    reporting; every shard-owned object lives in that shard's
    :class:`ShardRuntime`.  For compatibility with the historical
    ``DealScheduler`` surface (tests, invariants, telemetry,
    replication all navigate it), the coordinator also keeps merged
    read views — ``chains``, ``books``, ``mempools``, ``tokens``,
    ``commit_logs`` — over all shards; writes go through the bus.
    """

    def __init__(self, workload, config: MarketConfig | None = None,
                 verifier=None):
        self.workload = workload
        self.config = config or MarketConfig()
        self.telemetry = self.config.telemetry
        self.simulator = Simulator()
        self.wallet = Wallet()
        self.coordinator = KeyPair.from_label(f"market-coordinator/{workload.seed}")
        self.wallet.register(self.coordinator)
        for keypair in workload.accounts.values():
            self.wallet.register(keypair)

        self.chains: dict[str, Chain] = {}
        self.tokens: dict[str, FungibleToken] = {}
        self.nft_tokens: dict[str, NonFungibleToken] = {}
        self.books: dict[str, MarketEscrowBook] = {}
        self.mempools: dict[str, StepMempool] = {}
        self.minted: dict[str, int] = {}  # chain_id -> total token supply
        self.nft_minted: dict[str, tuple] = {}  # chain_id -> ((tid, owner), ...)
        self.order_ledger = OrderLedger()
        # Fee market: bids posted at admission, charges and evictions
        # recorded by the sealing policies.  Always constructed (it is
        # a bare dict holder), but under "fifo" nothing ever touches it
        # — the policy objects are never built.
        self.fee_ledger = FeeLedger()
        self.runs: dict[bytes, _DealRun] = {}
        self._receipts_seen = 0
        self._receipts_reverted = 0
        # Per-deal escrow contracts (timelock/CBC): contract name ->
        # (deal_id, asset_id) for receipt routing, and the published
        # contracts per chain so the conservation invariants can count
        # their token holdings.
        self._escrow_index: dict[str, tuple[bytes, str]] = {}
        self.deal_escrows: dict[str, list[Contract]] = {
            chain_id: [] for chain_id in workload.chain_ids
        }
        self.stats = {"timelock_refund_sweeps": 0, "stale_proofs_rejected": 0}
        # One verify aggregator for the whole market: every mempool
        # sealing at a boundary contributes its block's signature batch
        # and the flush — later in the same simulated instant — pays a
        # single merged multi-exponentiation for all of them.
        self.verify_aggregator = (
            VerifyAggregator(
                schedule=lambda callback: self.simulator.schedule_at(
                    self.simulator.now, callback, label="market/verify-flush"
                ),
                max_blocks=self.config.verify_max_blocks,
            )
            if self.config.verify_aggregation
            else None
        )
        if self.verify_aggregator is not None:
            self.verify_aggregator.telemetry = self.telemetry
        # The execution backend's verifier (None inline): when present
        # it takes over the actual batch checks — partitioned across
        # worker processes — while keys and verdict routing stay here.
        self.verifier = verifier
        if self.verify_aggregator is not None and verifier is not None:
            self.verify_aggregator.verify_many = verifier.verify_many
        # Protocol-safety breaches observed directly by the drivers
        # (e.g. a stale proof accepted) — merged into the report's
        # invariant violations.
        self.protocol_violations: list[str] = []
        # One certified blockchain per shard, created on demand (CBC
        # deals of shard s resolve against cbcs[s] and nothing else).
        self.cbcs: dict[int, CertifiedBlockchain] = {}
        self._cbc_drivers: dict[int, list[CbcDealDriver]] = {}

        if len(workload.chain_ids) < 1:
            raise MarketError("a market needs at least one chain")
        self.shards = int(getattr(workload, "shards", 1) or 1)
        if self.shards < 1:
            raise MarketError("a market needs at least one shard")
        if self.shards > len(workload.chain_ids):
            raise MarketError(
                f"{self.shards} shards need at least that many chains "
                f"(got {len(workload.chain_ids)})"
            )
        # Chain i belongs to shard i % M; shard s's home (coordinator)
        # chain is chain_ids[s], which carries that shard's commit log
        # and therefore its order flow.
        self.chain_shard = {
            chain_id: index % self.shards
            for index, chain_id in enumerate(workload.chain_ids)
        }
        self.shard_home_chain = {
            shard: workload.chain_ids[shard] for shard in range(self.shards)
        }
        # The message plane: one synchronous bus, one endpoint per
        # shard runtime plus the coordinator and the verify service.
        # An active chaos plan swaps in the ChaosBus (seeded hazards +
        # at-least-once delivery); the structural branch keeps the
        # chaos-off path byte-identical by construction.
        chaos = self.config.chaos
        if chaos is not None and chaos.market_active:
            self.bus = ChaosBus(
                self.simulator,
                chaos.market,
                seed=f"{workload.seed}/{chaos.seed}",
                ack_timeout=chaos.ack_timeout,
                backoff_cap=chaos.backoff_cap,
            )
        else:
            self.bus = LocalBus(self.simulator)
        self._dedup = DedupWindow(stats=self.bus.stats)
        self.bus.register(COORDINATOR_ENDPOINT, self._on_envelope)
        self.verify_service = VerifyService(self)
        self.runtimes: dict[int, ShardRuntime] = {}
        for shard in range(self.shards):
            runtime = ShardRuntime(self, shard)
            self.runtimes[shard] = runtime
            self.bus.register(shard_endpoint(shard), runtime.handle)
        # Chains are created in the workload's global order (not shard
        # by shard): chain construction seeds the simulator's event
        # heap, and heap order is part of the byte-identity contract
        # with the historical single-object scheduler.
        for chain_id in workload.chain_ids:
            self.runtimes[self.chain_shard[chain_id]].add_chain(chain_id)
        self.coordinator_chain_id = workload.chain_ids[0]
        # One commit log per shard, on the shard's home chain.  Shard
        # 0 keeps the historical contract name so an unsharded market
        # is byte-identical to the pre-sharding layout.
        self.commit_logs: dict[int, MarketCommitLog] = {}
        self._commitlog_shards: dict[str, int] = {}
        for shard in range(self.shards):
            name = (
                COMMIT_LOG_CONTRACT if shard == 0
                else f"{COMMIT_LOG_CONTRACT}-s{shard}"
            )
            log = self.runtimes[shard].install_commit_log(name, self.shards)
            self.commit_logs[shard] = log
            self._commitlog_shards[name] = shard
        self.commit_log = self.commit_logs[0]
        self._fund_accounts()
        # Replication is strictly additive: the layer only exists when
        # asked for, and with no crash faults it adds no market-visible
        # behaviour (separate network, separate rng stream, gates that
        # never close) — the E16 fingerprint equivalence test holds the
        # runtime to that.
        self.replication: ReplicationLayer | None = None
        plan = self.config.fault_plan
        replication_chaos = chaos is not None and chaos.replication_active
        if self.config.replication_factor > 1 or (
            plan is not None and getattr(plan, "faults", ())
        ):
            self.replication = ReplicationLayer(
                self,
                factor=self.config.replication_factor,
                delta=self.config.replication_delta,
                failover_timeout=self.config.failover_timeout,
                reliable=replication_chaos,
                ack_timeout=chaos.ack_timeout if replication_chaos else 2.0,
                backoff_cap=chaos.backoff_cap if replication_chaos else 16.0,
            )
            for shard, group in self.replication.groups.items():
                self.runtimes[shard].replica_group = group
            if replication_chaos:
                # Storm the delta network from the plan's replication
                # policy; the layer's reliable shipping (above) and the
                # follower's seq-idempotent apply absorb it.
                policy = chaos.replication
                MessageStorm(
                    drop_rate=policy.drop_rate,
                    dup_rate=policy.dup_rate,
                    delay_rate=policy.delay_rate,
                    delay_min=policy.delay_min,
                    delay_max=policy.delay_max,
                    seed=f"{workload.seed}/{chaos.seed}",
                ).install(self.replication.network)
            if plan is not None:
                plan.install(self.replication.network)
                plan.install_processes(self.replication)
        if plan is not None and getattr(plan, "faults", ()):
            # Worker-level faults (WorkerKill) are scheduled on *every*
            # coordinator's simulator — inline and all SPMD workers
            # alike, keeping the event heaps identical across backends
            # — but only act in the worker whose index matches.
            plan.install_workers(_WorkerFaultHost(self))
        # Telemetry attaches last so the BlockTap's chain subscriptions
        # run after the runtimes' own (observer order is registration
        # order — the tap reads what the phase engine already routed).
        if self.telemetry is not None:
            self.telemetry.attach(self)

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    def home_shard(self, deal_id: bytes) -> int:
        """The shard whose coordinator chain owns this deal.

        Hashed once per deal at admission and cached on the run
        (``run.home_shard``); the submit paths below take the cached
        value rather than re-deriving it.
        """
        return shard_of_deal(deal_id, self.shards)

    def _home_log(self, shard: int) -> MarketCommitLog:
        return self.commit_logs[shard]

    @property
    def cbc(self) -> CertifiedBlockchain | None:
        """Shard 0's certified blockchain (back-compat accessor)."""
        return self.cbcs.get(0)

    # ------------------------------------------------------------------
    # The message plane (coordinator side)
    # ------------------------------------------------------------------
    def _post(self, shard: int, payload: object) -> None:
        self.bus.post(COORDINATOR_ENDPOINT, shard_endpoint(shard), shard, payload)

    def submit_vote(self, chain_id: str, tx: Transaction, deal_id: bytes) -> None:
        """Fan one vote (or abort mark) out to the owning shard."""
        self._post(
            self.chain_shard[chain_id],
            VoteFanout(deal_id=deal_id, chain_id=chain_id, tx=tx),
        )

    def submit_escrow_op(
        self, chain_id: str, tx: Transaction, deal_id: bytes, op: str
    ) -> None:
        """Route one escrow-plane step to the asset chain's shard."""
        self._post(
            self.chain_shard[chain_id],
            CrossShardEscrowOp(deal_id=deal_id, chain_id=chain_id, op=op, tx=tx),
        )

    def _on_envelope(self, envelope: Envelope) -> None:
        """Inbound shard traffic: sealed-block receipts."""
        if self._dedup.duplicate(envelope):
            return
        message = envelope.payload
        if isinstance(message, BlockReceipts):
            self._handle_block_receipts(message)
        elif isinstance(message, TelemetrySpan):
            # The processes backend ships worker telemetry this way;
            # inline runs never post one.
            if self.telemetry is not None:
                self.telemetry.absorb(message.payload)
        else:  # pragma: no cover - vocabulary is closed
            raise MarketError(
                f"coordinator: unknown message {type(message).__name__}"
            )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _setup_tx(self, chain: Chain, sender: Address, contract: str,
                  method: str, **args) -> None:
        receipt = chain.execute_now(Transaction(
            sender=sender, contract=contract, method=method,
            args=args, phase="market/setup",
        ))
        if not receipt.ok:  # pragma: no cover - setup must succeed
            raise MarketError(f"setup failed: {receipt.error}")

    def _fund_accounts(self) -> None:
        """Mint and deposit every account's session balance (setup-time).

        ``book_fund_fraction`` of each balance goes into the escrow
        book (backing unanimity deals); the rest stays in the wallet,
        where timelock/CBC deals escrow it into per-deal contracts.
        Non-fungible tokens are minted per the workload's manifest and
        funded into the book's custody (deposit-once).  Funding runs
        before the first simulator event, outside the message plane —
        it is setup, not market traffic.
        """
        fraction = getattr(self.workload, "book_fund_fraction", 1.0)
        for chain_id in self.workload.chain_ids:
            chain = self.chains[chain_id]
            token = self.tokens[chain_id]
            book = self.books[chain_id]
            total = 0
            for address in self.workload.accounts:
                balance = self.workload.initial_balance
                book_amount = int(balance * fraction)
                total += balance
                self._setup_tx(chain, address, token.name, "mint",
                               to=address, amount=balance)
                if book_amount > 0:
                    self._setup_tx(chain, address, token.name, "approve",
                                   spender=book.address, amount=book_amount)
                    self._setup_tx(chain, address, BOOK_CONTRACT, "fund",
                                   token=token.name, amount=book_amount)
            self.minted[chain_id] = total
            nft_token = self.nft_tokens.get(chain_id)
            if nft_token is None:
                continue
            minted = tuple(getattr(self.workload, "nft_minted", {}).get(chain_id, ()))
            self.nft_minted[chain_id] = minted
            for token_id, owner in minted:
                self._setup_tx(chain, owner, nft_token.name, "mint",
                               to=owner, token_id=token_id)
                self._setup_tx(chain, owner, nft_token.name, "approve",
                               spender=book.address, token_id=token_id)
                self._setup_tx(chain, owner, BOOK_CONTRACT, "fund_nft",
                               token=nft_token.name, token_id=token_id)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self) -> MarketReport:
        """Admit every order at its arrival time and run to quiescence."""
        for order in self.workload.orders():
            self.simulator.schedule_at(
                order.arrival,
                lambda order=order: self._admit(order),
                label="market/arrival",
            )
        self.simulator.run(
            until=self.config.horizon, max_events=self.config.max_events
        )
        if self.replication is not None:
            self.replication.finish(self.simulator.now)
        if self.telemetry is not None:
            self.telemetry.finalize(self)
        return self._report()

    def state_digest(self) -> str:
        """A compact hash of every chain's committed state.

        The ``processes`` supervisor uses this as its recovery proof:
        a restarted worker must converge to the same digest as its
        healthy peers before its run is accepted.
        """
        digest = tagged_hash(
            "repro/market/state-digest",
            b"".join(
                self.chains[chain_id].state_hash()
                for chain_id in sorted(self.chains)
            ),
        )
        return digest.hex()[:32]

    def _admit(self, order: SignedDealOrder) -> None:
        spec = order.spec
        deal_id = spec.deal_id
        if deal_id in self.runs:
            raise MarketError(f"duplicate deal id for order #{order.index}")
        run = _DealRun(order=order)
        run.opens_expected = len(spec.assets)
        run.transfers_expected = len(spec.steps)
        run.claim_chains = spec.chains()
        run.home_shard = self.home_shard(deal_id)
        touched = {
            self.chain_shard.get(chain_id, run.home_shard)
            for chain_id in run.claim_chains
        }
        touched.add(run.home_shard)
        run.cross_shard = len(touched) > 1
        self.runs[deal_id] = run
        # The co-signed fee bid enters the ledger at admission; the
        # mempool sealing policies look it up per step.  A zero bid
        # (every FIFO-era order) records nothing.
        self.fee_ledger.post(deal_id, order.fee_bid)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.deal_admitted(run, self.simulator.now)
        if not self._admissible(spec):
            run.phase = DealPhase.REJECTED
            run.reason = "malformed"
            run.finished_at = self.simulator.now
            if telemetry is not None:
                telemetry.deal_finished(run, run.finished_at)
            return
        if spec.protocol == PROTOCOL_TIMELOCK:
            run.driver = TimelockDealDriver(self, run)
        elif spec.protocol == PROTOCOL_CBC:
            run.driver = CbcDealDriver(self, run)
            self._cbc_drivers.setdefault(run.home_shard, []).append(run.driver)
        self._post(run.home_shard, SubmitOrder(deal_id=deal_id, order=order))
        if spec.protocol != PROTOCOL_TIMELOCK:
            # Timelock deals need no patience timer: their own terminal
            # deadline (t0 + N·Δ) already guarantees termination.
            run.patience_handle = self.simulator.schedule(
                self.config.patience,
                lambda: self._on_patience(run),
                label="market/patience",
            )

    def _admissible(self, spec: DealSpec) -> bool:
        if not spec.assets:
            return False
        for asset in spec.assets:
            if asset.chain_id not in self.chains:
                return False
            if asset.fungible:
                if asset.token != self.tokens[asset.chain_id].name:
                    return False
            else:
                # NFT escrows live in the book: unanimity only.
                if spec.protocol != PROTOCOL_UNANIMITY:
                    return False
                nft_token = self.nft_tokens.get(asset.chain_id)
                if nft_token is None or asset.token != nft_token.name:
                    return False
        return spec.is_well_formed()

    # ------------------------------------------------------------------
    # Services for the protocol drivers
    # ------------------------------------------------------------------
    def keypair_for(self, party: Address) -> KeyPair:
        """The keypair of a market account (drivers sign votes with it)."""
        return self.workload.accounts[party]

    def publish_deal_escrow(
        self, chain_id: str, contract: Contract, deal_id: bytes, asset_id: str
    ) -> None:
        """Publish a per-deal escrow contract and index it for routing."""
        self._post(
            self.chain_shard[chain_id],
            CrossShardEscrowOp(
                deal_id=deal_id, chain_id=chain_id, op="publish",
                contract=contract, asset_id=asset_id,
            ),
        )
        self._escrow_index[contract.name] = (deal_id, asset_id)
        self.deal_escrows[chain_id].append(contract)

    def ensure_cbc(self, shard: int = 0) -> CertifiedBlockchain:
        """Create one shard's certified blockchain on demand.

        Each shard's CBC has its own validator set and log; a proof
        extracted from one shard's CBC carries that shard's validator
        signatures and is rejected by every escrow bound to another
        shard's keys (the wrong-shard replay defence).  Shard 0 keeps
        the unsharded market's name and validator seed.
        """
        cbc = self.cbcs.get(shard)
        if cbc is None:
            suffix = "" if shard == 0 else f"-s{shard}"
            validators = ValidatorSet.generate(
                self.config.cbc_f,
                seed=f"market-cbc{suffix}/{self.workload.seed}",
            )
            cbc = CertifiedBlockchain(
                self.simulator, validators, self.wallet,
                block_interval=self.config.block_interval,
                name=f"market-cbc{suffix}",
            )
            cbc.subscribe(
                lambda _cbc, _block, shard=shard: self._on_cbc_block(shard)
            )
            self.cbcs[shard] = cbc
            self.runtimes[shard].cbc = cbc
        return cbc

    def _on_cbc_block(self, shard: int) -> None:
        # Prune settled deals as we go so each CBC block only touches
        # the in-flight CBC runs of its own shard, not the whole
        # market history.
        survivors = []
        for driver in self._cbc_drivers.get(shard, ()):
            if driver.run.terminal:
                continue
            driver.on_cbc_block()
            if not driver.run.terminal:
                survivors.append(driver)
        self._cbc_drivers[shard] = survivors

    # ------------------------------------------------------------------
    # Receipt routing (the phase engine)
    # ------------------------------------------------------------------
    def _handle_block_receipts(self, message: BlockReceipts) -> None:
        chain = self.chains[message.chain_id]
        for receipt in message.receipts:
            self._receipts_seen += 1
            if not receipt.ok:
                self._receipts_reverted += 1
            self._route(chain, receipt)
        if self.config.check_invariants_per_block:
            violations = check_market_invariants(self)
            if violations:
                raise MarketError(
                    f"conservation violated at block {message.height} of "
                    f"{message.chain_id}: {violations[0]}"
                )

    def _route(self, chain: Chain, receipt: Receipt) -> None:
        escrow_ref = self._escrow_index.get(receipt.tx.contract)
        if escrow_ref is not None:
            deal_id, asset_id = escrow_ref
            run = self.runs.get(deal_id)
            if run is None or run.terminal or run.driver is None:
                return
            run.driver.on_escrow_receipt(asset_id, receipt)
            return
        if (
            receipt.tx.contract != BOOK_CONTRACT
            and receipt.tx.contract not in self._commitlog_shards
        ):
            return  # token transfers etc. are not deal phase steps
        deal_id = receipt.tx.args.get("deal_id")
        run = self.runs.get(deal_id)
        if run is None or run.terminal:
            return
        method = receipt.tx.method
        if method == "register":
            self._on_register(run, receipt)
        elif method == "open":
            self._on_open(run, receipt)
        elif method == "transfer":
            self._on_transfer(run, receipt)
        elif method in ("vote", "mark_abort"):
            self._on_log_receipt(run, receipt)
        elif method in ("commit", "abort"):
            self._on_claim(run, chain, receipt)

    def _on_register(self, run: _DealRun, receipt: Receipt) -> None:
        if not receipt.ok:
            self.finish(run, DealPhase.REJECTED, "register-reverted",
                        receipt.executed_at)
            return
        if run.driver is not None:
            # Timelock/CBC deals: the order cleared signature checks at
            # this block; hand the deal to its protocol driver.
            run.driver.on_registered(receipt)
            return
        run.phase = DealPhase.ESCROW
        if self.telemetry is not None:
            self.telemetry.deal_phase(run, "escrow", receipt.executed_at)
        spec = run.order.spec
        for asset in spec.assets:
            if asset.owner in run.order.no_show:
                continue  # adversarial owner: never escrows
            args = {
                "deal_id": spec.deal_id,
                "asset_id": asset.asset_id,
                "token": asset.token,
                "parties": spec.parties,
            }
            if asset.fungible:
                args["amount"] = asset.amount
            else:
                args["token_ids"] = asset.token_ids
            self.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=asset.owner,
                    contract=BOOK_CONTRACT,
                    method="open",
                    args=args,
                    phase="market/escrow",
                ),
                spec.deal_id,
                op="open",
            )

    def _on_open(self, run: _DealRun, receipt: Receipt) -> None:
        if not receipt.ok:
            if run.decided is not None or run.abort_requested:
                # A straggler open bouncing off an already-settled deal
                # (e.g. after a patience abort) is not a conflict.
                return
            # Escrow conflict: another deal already holds the funds.
            run.conflict = True
            self._request_abort(run, "conflict")
            return
        run.opens_done += 1
        if run.phase is DealPhase.ESCROW and run.opens_done == run.opens_expected:
            run.phase = DealPhase.TRANSFER
            if self.telemetry is not None:
                self.telemetry.deal_phase(run, "transfer", receipt.executed_at)
            if run.transfers_expected == 0:
                self._start_voting(run)
            else:
                self._submit_transfers(run)

    def _submit_transfers(self, run: _DealRun) -> None:
        spec = run.order.spec
        for step in spec.steps:
            asset = spec.asset(step.asset_id)
            args = {
                "deal_id": spec.deal_id,
                "asset_id": step.asset_id,
                "to": step.receiver,
            }
            if asset.fungible:
                args["amount"] = step.amount
            else:
                args["token_ids"] = step.token_ids
            self.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=step.giver,
                    contract=BOOK_CONTRACT,
                    method="transfer",
                    args=args,
                    phase="market/transfer",
                ),
                spec.deal_id,
                op="transfer",
            )

    def _on_transfer(self, run: _DealRun, receipt: Receipt) -> None:
        if not receipt.ok:
            self._request_abort(run, "transfer-failed")
            return
        run.transfers_done += 1
        if (
            run.phase is DealPhase.TRANSFER
            and run.transfers_done == run.transfers_expected
        ):
            self._start_voting(run)

    def _start_voting(self, run: _DealRun) -> None:
        run.phase = DealPhase.VOTING
        if self.telemetry is not None:
            self.telemetry.deal_phase(run, "voting", self.simulator.now)
        deal_id = run.order.deal_id
        home_chain = self.shard_home_chain[run.home_shard]
        for party in run.order.voters():
            self.submit_vote(
                home_chain,
                Transaction(
                    sender=party,
                    contract=self._home_log(run.home_shard).name,
                    method="vote",
                    args={"deal_id": deal_id},
                    phase="market/commit",
                ),
                deal_id,
            )

    def _on_log_receipt(self, run: _DealRun, receipt: Receipt) -> None:
        if not receipt.ok:
            # A mark_abort can only revert because the registration has
            # not landed yet or because the deal is already decided; in
            # the latter case the decision receipt precedes this one (the
            # log's state changed first), so ``decided`` is already set
            # and no retry fires.  No error-message inspection needed.
            if (
                receipt.tx.method == "mark_abort"
                and run.decided is None
                and run.abort_retries < _ABORT_RETRY_LIMIT
            ):
                run.abort_retries += 1
                run.abort_requested = False
                self.simulator.schedule(
                    2 * self.config.block_interval,
                    lambda: self._request_abort(run, run.reason or "timeout"),
                    label="market/abort-retry",
                )
            return  # a vote losing the race with an abort mark is benign
        for event in receipt.events:
            if event.name == "DealDecided":
                self._on_decided(run, event.fields["outcome"], receipt.executed_at)

    def _request_abort(self, run: _DealRun, reason: str) -> None:
        if run.abort_requested or run.decided is not None or run.terminal:
            return
        run.abort_requested = True
        if not run.reason:
            run.reason = reason
        self.submit_vote(
            self.shard_home_chain[run.home_shard],
            Transaction(
                sender=self.coordinator.address,
                contract=self._home_log(run.home_shard).name,
                method="mark_abort",
                args={"deal_id": run.order.deal_id},
                phase="market/abort",
            ),
            run.order.deal_id,
        )

    def _on_decided(self, run: _DealRun, outcome: str, at: float) -> None:
        if run.decided is not None:
            return
        run.decided = outcome
        run.phase = DealPhase.SETTLING
        if self.telemetry is not None:
            self.telemetry.deal_phase(run, "settling", at)
        method = "commit" if outcome == "commit" else "abort"
        # One DealDecided per claim chain, in spec order: cross-shard
        # claim interleavings stay exactly what they were when the
        # scheduler submitted to the mempools directly.
        for chain_id in run.claim_chains:
            self._post(
                self.chain_shard[chain_id],
                DealDecided(
                    deal_id=run.order.deal_id, chain_id=chain_id, method=method
                ),
            )

    def _on_claim(self, run: _DealRun, chain: Chain, receipt: Receipt) -> None:
        if not receipt.ok:
            return  # duplicate claim after the deal settled: benign
        run.settled_chains.add(chain.chain_id)
        if set(run.claim_chains) <= run.settled_chains:
            if run.decided == "commit":
                # A patience/abort request that lost the race with the
                # deciding vote leaves a stale reason; the deal committed.
                self.finish(run, DealPhase.COMMITTED, "", receipt.executed_at)
            else:
                self.finish(run, DealPhase.ABORTED, run.reason,
                            receipt.executed_at)

    def _on_patience(self, run: _DealRun) -> None:
        if run.terminal or run.decided is not None:
            return
        if run.driver is not None:
            run.driver.on_patience()
            return
        self._request_abort(run, "timeout")

    def _on_order_rejected(self, deal_id: bytes) -> None:
        run = self.runs.get(deal_id)
        if run is None or run.terminal:
            return
        self.finish(run, DealPhase.REJECTED, "forged", self.simulator.now)

    def _on_step_evicted(self, deal_id: bytes) -> None:
        """A base-fee mempool evicted one of the deal's steps.

        Eviction only happens when the bid sits below the base-fee
        floor, and a deal that ever cleared registration under the
        base-fee policy bid at least the ceiling of the register-time
        base fee (>= the floor) — so in practice only registration
        steps are evicted and the deal dies here with nothing on any
        chain.  That makes the direct abort below safe: there are no
        escrows to unwind.  Should a later step ever be evicted (a
        policy with different eligibility rules), the deal is only
        *marked* priced-out and the ordinary patience/deadline
        machinery still terminates and refunds it — the settlement
        phases are fee-exempt by construction.
        """
        run = self.runs.get(deal_id)
        if run is None or run.terminal:
            return
        run.priced_out = True
        self.fee_ledger.price_out(deal_id)
        if self.telemetry is not None:
            self.telemetry.deal_event(deal_id, "fee-priced-out")
        if run.phase is DealPhase.REGISTERING:
            self.finish(run, DealPhase.ABORTED, "priced-out", self.simulator.now)

    def finish(self, run: _DealRun, phase: DealPhase, reason: str, at: float) -> None:
        run.phase = phase
        run.reason = reason
        run.finished_at = at
        if run.patience_handle is not None:
            run.patience_handle.cancel()
            run.patience_handle = None
        if self.telemetry is not None:
            self.telemetry.deal_finished(run, at)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _report(self) -> MarketReport:
        committed = aborted = rejected = stuck = conflicts = timeouts = 0
        cross_shard_deals = cross_shard_committed = 0
        commit_latencies: list[float] = []
        outcome_log = []
        per_protocol: dict[str, dict] = {}
        for run in self.runs.values():
            if run.cross_shard:
                cross_shard_deals += 1
                if run.phase is DealPhase.COMMITTED:
                    cross_shard_committed += 1
            latency = (
                run.finished_at - run.order.arrival
                if run.finished_at is not None
                else -1.0
            )
            outcome_log.append(
                (run.order.index, run.protocol, run.phase.value, run.reason, latency)
            )
            bucket = per_protocol.setdefault(
                run.protocol,
                {"committed": 0, "aborted": 0, "rejected": 0, "latencies": []},
            )
            if run.phase is DealPhase.COMMITTED:
                committed += 1
                commit_latencies.append(latency)
                bucket["committed"] += 1
                bucket["latencies"].append(latency)
            elif run.phase is DealPhase.ABORTED:
                aborted += 1
                bucket["aborted"] += 1
            elif run.phase is DealPhase.REJECTED:
                rejected += 1
                bucket["rejected"] += 1
            else:
                stuck += 1
            if run.conflict:
                conflicts += 1
            if run.phase is DealPhase.ABORTED and run.reason == "timeout":
                timeouts += 1
        commit_latencies.sort()
        outcome_log.sort()
        protocol_rows = []
        for protocol in sorted(per_protocol):
            bucket = per_protocol[protocol]
            latencies = sorted(bucket["latencies"])
            protocol_rows.append((
                protocol, bucket["committed"], bucket["aborted"],
                bucket["rejected"],
                _percentile(latencies, 0.50),
                _percentile(latencies, 0.90),
                _percentile(latencies, 0.99),
            ))
        end_time = self.simulator.now
        return MarketReport(
            deals=len(self.runs),
            committed=committed,
            aborted=aborted,
            rejected=rejected,
            stuck=stuck,
            conflicts=conflicts,
            timeouts=timeouts,
            latency_p50=_percentile(commit_latencies, 0.50),
            latency_p90=_percentile(commit_latencies, 0.90),
            latency_p99=_percentile(commit_latencies, 0.99),
            end_time=end_time,
            deals_per_kilotick=(committed / end_time * 1000.0) if end_time else 0.0,
            chains=len(self.chains),
            blocks=sum(len(chain.blocks) - 1 for chain in self.chains.values()),
            txs_executed=self._receipts_seen,
            txs_reverted=self._receipts_reverted,
            max_mempool_depth=max(
                pool.stats["max_depth"] for pool in self.mempools.values()
            ),
            events_processed=self.simulator.events_processed,
            invariant_violations=tuple(
                self.protocol_violations + check_market_invariants(self)
            ),
            outcome_log=tuple(outcome_log),
            per_protocol=tuple(protocol_rows),
            stale_proofs_rejected=self.stats["stale_proofs_rejected"],
            timelock_refund_sweeps=self.stats["timelock_refund_sweeps"],
            verify_stats=tuple(
                sorted(self.verify_aggregator.stats.items())
                if self.verify_aggregator is not None
                else ()
            ),
            shards=self.shards,
            cross_shard_deals=cross_shard_deals,
            cross_shard_committed=cross_shard_committed,
            replication_factor=(
                self.replication.factor if self.replication is not None else 1
            ),
            faults_injected=(
                self.replication.counters["crashes"]
                if self.replication is not None
                else 0
            ),
            recoveries=(
                self.replication.counters["recoveries"]
                if self.replication is not None
                else 0
            ),
            failovers=(
                self.replication.counters["failovers"]
                if self.replication is not None
                else 0
            ),
            availability=(
                self.replication.availability(end_time)
                if self.replication is not None
                else 1.0
            ),
            replication_stats=tuple(
                sorted(self.replication.stats().items())
                if self.replication is not None
                else ()
            ),
            fault_stats=tuple(
                tuple(sorted(row.items()))
                for row in (
                    self.config.fault_plan.stats()
                    if self.config.fault_plan is not None
                    and getattr(self.config.fault_plan, "faults", ())
                    else ()
                )
            ),
            network_stats=tuple(
                sorted(self.replication.network.stats.items())
                if self.replication is not None
                else ()
            ),
            sore_losers=sum(1 for run in self.runs.values() if run.sore_loser),
            bus_stats=tuple(sorted(self.bus.stats.items())),
            seal_policy=self.config.seal_policy,
            fee_priced_out=sum(
                1 for run in self.runs.values() if run.priced_out
            ),
            fees_accrued=self.fee_ledger.accrued,
            fee_stats=tuple(sorted(
                (name, sum(
                    pool.stats.get(name, 0) for pool in self.mempools.values()
                ))
                for name in ("fee_evicted",)
                if any(name in pool.stats for pool in self.mempools.values())
            )),
        )


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------
class _WorkerFaultHost:
    """The adapter :meth:`FaultPlan.install_workers` aims worker faults at.

    Every coordinator — inline and all SPMD workers alike — schedules
    the same worker-fault events, keeping the event heaps identical
    across backends; a fault only *acts* inside the worker whose index
    matches, and never inside a restarted replacement (replacements run
    with worker faults suppressed so recovery can complete).
    """

    def __init__(self, market: "MarketCoordinator"):
        self.market = market

    @property
    def simulator(self) -> Simulator:
        return self.market.simulator

    def fires_worker_faults(self, worker: int) -> bool:
        verifier = self.market.verifier
        if verifier is None:
            return False
        if getattr(verifier, "suppress_worker_faults", False):
            return False
        return getattr(verifier, "index", None) == worker

    def kill_worker(self, mode: str) -> None:
        if mode == "hang":
            while True:  # pragma: no cover - supervisor terminates us
                time.sleep(3600.0)
        os._exit(_WORKER_KILL_EXIT)


class ExecutionBackend:
    """Where a market run's work actually executes."""

    name = "?"

    def execute(self, handle: "MarketHandle") -> MarketReport:
        raise NotImplementedError


class InlineBackend(ExecutionBackend):
    """Everything in this process — the historical scheduler, exactly."""

    name = "inline"

    def execute(self, handle: "MarketHandle") -> MarketReport:
        return handle.market.run()


class _PartitionedVerifier:
    """One worker's slice of the market's signature verification.

    Plugged into the shared :class:`VerifyAggregator` as its
    ``verify_many`` hook: for each flush chunk the worker genuinely
    batch-verifies only the seal batches whose chains its shard owns
    (one merged multi-exponentiation over its own subset — merged-ok
    iff every batch individually valid, so the per-batch verdicts
    match the inline merged check), publishes those verdicts as
    ``SealVerdict`` messages up the pipe, and blocks for the foreign
    verdicts the other workers own.  Blocking *is* the simulated-time
    barrier: nobody advances past a seal boundary until every shard's
    verification for it has landed.
    """

    def __init__(self, index: int, conn, preload=None,
                 suppress_worker_faults: bool = False):
        self.index = index
        self.conn = conn
        self._foreign: dict[tuple[str, int], bool] = {}
        self.stats = {"own_batches": 0, "foreign_batches": 0, "pairs_verified": 0}
        # Supervision plumbing: ``waiting`` tells the heartbeat thread
        # (and through it the supervisor) that a frozen event counter
        # means "blocked on a foreign verdict", not "hung".  A restarted
        # worker replays the run from scratch with the verdicts already
        # relayed before the failure preloaded, so it never waits for a
        # barrier the other workers have long passed.
        self.waiting = False
        self.suppress_worker_faults = suppress_worker_faults
        for verdict in preload or ():
            self._foreign[(verdict.chain_id, verdict.seq)] = verdict.ok

    def verify_many(self, keyed: list) -> list:
        own = [(key, items) for key, owner, items in keyed if owner == self.index]
        local: dict[tuple[str, int], bool] = {}
        if own:
            verdicts = schnorr_batch_verify_many([items for _, items in own])
            for (key, items), ok in zip(own, verdicts):
                local[key] = ok
                self.stats["own_batches"] += 1
                self.stats["pairs_verified"] += len(items)
                self.conn.send(("verdict", SealVerdict(key[0], key[1], ok)))
        out = []
        for key, owner, items in keyed:
            if owner == self.index:
                out.append(local[key])
            else:
                self.stats["foreign_batches"] += 1
                out.append(self._await(key))
        return out

    def verify_one(self, key, owner: int, items: list) -> bool:
        """The non-aggregated path: one batch, same ownership rule."""
        return self.verify_many([(key, owner, items)])[0]

    def _await(self, key: tuple[str, int]) -> bool:
        self.waiting = True
        try:
            while key not in self._foreign:
                message = self.conn.recv()
                if message[0] == "verdict":
                    verdict: SealVerdict = message[1]
                    self._foreign[(verdict.chain_id, verdict.seq)] = verdict.ok
        finally:
            self.waiting = False
        return self._foreign.pop(key)


class _LockedConn:
    """A pipe end whose ``send`` is serialized across threads.

    The worker's main thread (verdicts, report, done) and its
    heartbeat daemon share one pipe to the supervisor; ``Connection``
    sends are not atomic across threads, so both go through one lock.
    ``recv`` stays main-thread-only and needs no lock.
    """

    def __init__(self, conn):
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, message) -> None:
        with self._lock:
            self._conn.send(message)

    def recv(self):
        return self._conn.recv()

    def close(self) -> None:
        self._conn.close()


def _heartbeat_loop(conn, index: int, market, verifier, interval: float) -> None:
    """Beat until the pipe dies: (events processed, blocked-on-barrier)."""
    while True:
        try:
            conn.send((
                "heartbeat",
                index,
                market.simulator.events_processed,
                verifier.waiting,
            ))
        except (BrokenPipeError, OSError):  # worker done or parent gone
            return
        time.sleep(interval)


def _worker_run(index: int, workload, config, conn, options=None) -> None:
    """One shard worker: replay the full market, own one verify slice."""
    options = options or {}
    try:
        if index > 0 and config is not None and config.telemetry is not None:
            # Only worker 0's telemetry ships home; the others skip the
            # (byte-neutral) tracing work entirely.
            config = replace(config, telemetry=None)
        conn = _LockedConn(conn)
        verifier = _PartitionedVerifier(
            index,
            conn,
            preload=options.get("preload_verdicts"),
            suppress_worker_faults=options.get("suppress_worker_faults", False),
        )
        market = MarketCoordinator(workload, config, verifier=verifier)
        interval = options.get("heartbeat_interval", 0.0)
        if interval > 0:
            threading.Thread(
                target=_heartbeat_loop,
                args=(conn, index, market, verifier, interval),
                name=f"market-heartbeat-{index}",
                daemon=True,
            ).start()
        report = market.run()
        if index == 0:
            conn.send(("report", report))
            if market.telemetry is not None:
                conn.send((
                    "telemetry",
                    Envelope(
                        sender=shard_endpoint(0),
                        shard=0,
                        tick=market.simulator.now,
                        payload=TelemetrySpan(
                            kind="run-export",
                            payload=market.telemetry.export_payload(),
                        ),
                    ),
                ))
        conn.send(("done", index, report.fingerprint(), market.state_digest()))
    except BaseException:  # noqa: BLE001 - ship the traceback to the parent
        import traceback

        try:
            conn.send(("error", index, traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _WorkerSlot:
    """The supervisor's bookkeeping for one worker index."""

    def __init__(self, index: int, conn, proc):
        self.index = index
        self.conn = conn
        self.proc = proc
        self.restarts = 0
        self.restarted = False
        self.done = False
        self.progress = -1
        self.last_change = time.monotonic()
        self.waiting = False


class ProcessBackend(ExecutionBackend):
    """One supervised worker process per shard, verdicts per barrier.

    Every worker replays the same deterministic simulation; the
    expensive part — seal-batch signature verification, ~90% of a
    sharded E16's wall-clock — is partitioned by shard ownership and
    the verdicts relayed through the parent, so M shards put M cores
    on the verification plane while every byte of every worker's run
    stays identical (the backend cross-checks all workers'
    fingerprints before returning).  Falls back to the inline
    execution (byte-identical by construction) when workers cannot be
    forked — inside a daemonic pool worker such as ``run_all.py
    --jobs``, or on platforms without ``fork``.

    **Supervision.**  Workers heartbeat (events processed,
    blocked-on-barrier) every ``heartbeat_interval`` seconds.  The
    supervisor detects a killed worker by pipe EOF (exit code 73 =
    injected kill, anything else = crash) and a hung one by a frozen
    event counter past ``stall_timeout`` (workers legitimately blocked
    awaiting a foreign verdict are exempt).  A failed worker is
    restarted with worker faults suppressed and the full verdict log
    relayed so far preloaded — passed as process *arguments*, never
    over the pipe, so a restart can never deadlock on a full pipe —
    and replays the run from scratch; its final report fingerprint
    *and* chain-state digest must match its healthy peers
    (``restarts_verified`` counts the proof).  After ``max_restarts``
    failures of one slot the backend degrades gracefully: it tears the
    workers down and runs the whole market inline.  ``stats`` carries
    the observable accounting (detections, restarts, proofs,
    heartbeats, degradations); the report itself stays
    backend-invariant.
    """

    name = "processes"

    def __init__(self, heartbeat_interval: float = 0.5,
                 stall_timeout: float = 30.0, max_restarts: int = 2):
        self.heartbeat_interval = heartbeat_interval
        self.stall_timeout = stall_timeout
        self.max_restarts = max_restarts
        self.stats = {
            "kills_detected": 0,
            "hangs_detected": 0,
            "crashes_detected": 0,
            "restarts": 0,
            "restarts_verified": 0,
            "heartbeats": 0,
            "degraded": 0,
        }

    @staticmethod
    def _can_fork() -> bool:
        return (
            "fork" in multiprocessing.get_all_start_methods()
            and not multiprocessing.current_process().daemon
        )

    def _spawn(self, context, index: int, workload, config, options):
        parent_conn, child_conn = context.Pipe()
        proc = context.Process(
            target=_worker_run,
            args=(index, workload, config, child_conn, options),
            name=f"market-shard-{index}",
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def execute(self, handle: "MarketHandle") -> MarketReport:
        workload, config = handle.workload, handle.config
        if not self._can_fork():
            return MarketCoordinator(workload, config).run()
        workers = int(getattr(workload, "shards", 1) or 1)
        context = multiprocessing.get_context("fork")
        options = {"heartbeat_interval": self.heartbeat_interval}
        slots: dict[int, _WorkerSlot] = {}
        for index in range(workers):
            conn, proc = self._spawn(context, index, workload, config, options)
            slots[index] = _WorkerSlot(index, conn, proc)
        try:
            (report, telemetry_export, fingerprints, digests, errors,
             degrade) = self._supervise(context, workload, config, slots)
        finally:
            for slot in slots.values():
                try:
                    slot.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                if slot.proc.is_alive():
                    slot.proc.terminate()
                slot.proc.join()
        if errors:
            raise MarketError(
                "market worker failed:\n" + "\n".join(errors)
            )
        if degrade:
            self.stats["degraded"] += 1
            return MarketCoordinator(workload, config).run()
        if report is None or len(fingerprints) != workers:
            raise MarketError(
                f"market workers exited early: {len(fingerprints)}/{workers} "
                "fingerprints received"
            )
        if len(set(fingerprints.values())) != 1:
            raise MarketError(
                f"market workers diverged: fingerprints {sorted(fingerprints.items())}"
            )
        if len(set(digests.values())) != 1:
            raise MarketError(
                f"market workers diverged: state digests {sorted(digests.items())}"
            )
        for slot in slots.values():
            if slot.restarted:
                # Digest agreement above is the recovery proof.
                self.stats["restarts_verified"] += 1
        if (
            config is not None
            and config.telemetry is not None
            and telemetry_export is not None
        ):
            config.telemetry.absorb(telemetry_export.payload.payload)
        return report

    def _supervise(self, context, workload, config, slots):
        """Pump the verdict exchange, watching worker health, until done.

        Each ``SealVerdict`` a worker publishes is appended to the
        verdict log and forwarded to every other running worker;
        report/telemetry/fingerprint/digest messages are collected.
        Worker death (EOF) and stalls (frozen heartbeats) trigger a
        restart with the log preloaded; repeated failure of one slot
        requests degradation.  A deterministic worker error aborts.
        """
        verdict_log: list = []
        report = None
        telemetry_export = None
        fingerprints: dict[int, str] = {}
        digests: dict[int, str] = {}
        errors: list[str] = []
        degrade = False

        def restart(slot: _WorkerSlot, detected: str) -> None:
            nonlocal degrade
            self.stats[detected] += 1
            if slot.proc.is_alive():
                slot.proc.terminate()
            slot.proc.join()
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            if slot.restarts >= self.max_restarts:
                degrade = True
                return
            slot.restarts += 1
            slot.restarted = True
            self.stats["restarts"] += 1
            slot.conn, slot.proc = self._spawn(
                context, slot.index, workload, config,
                {
                    "heartbeat_interval": self.heartbeat_interval,
                    "suppress_worker_faults": True,
                    "preload_verdicts": tuple(verdict_log),
                },
            )
            slot.progress = -1
            slot.waiting = False
            slot.last_change = time.monotonic()

        while (not degrade and not errors
               and any(not slot.done for slot in slots.values())):
            live = {
                slot.conn: slot for slot in slots.values() if not slot.done
            }
            ready = multiprocessing.connection.wait(
                list(live), timeout=self.heartbeat_interval or 0.05
            )
            for conn in ready:
                slot = live[conn]
                if slot.conn is not conn:  # replaced by a restart above
                    continue
                try:
                    message = conn.recv()
                except EOFError:
                    slot.proc.join()
                    restart(slot, "kills_detected"
                            if slot.proc.exitcode == _WORKER_KILL_EXIT
                            else "crashes_detected")
                    continue
                kind = message[0]
                if kind == "verdict":
                    verdict_log.append(message[1])
                    for other in slots.values():
                        if other is slot or other.done:
                            continue
                        try:
                            other.conn.send(message)
                        except (BrokenPipeError, OSError):
                            pass  # death is handled on its own EOF
                elif kind == "heartbeat":
                    self.stats["heartbeats"] += 1
                    slot.waiting = message[3]
                    if message[2] != slot.progress:
                        slot.progress = message[2]
                        slot.last_change = time.monotonic()
                elif kind == "report":
                    report = message[1]
                elif kind == "telemetry":
                    telemetry_export = message[1]
                elif kind == "done":
                    fingerprints[message[1]] = message[2]
                    digests[message[1]] = message[3]
                    slot.done = True
                elif kind == "error":
                    errors.append(message[2])
            if self.stall_timeout > 0:
                now = time.monotonic()
                for slot in slots.values():
                    if slot.done or slot.waiting:
                        continue
                    if now - slot.last_change > self.stall_timeout:
                        restart(slot, "hangs_detected")
        return report, telemetry_export, fingerprints, digests, errors, degrade


_BACKENDS = {
    InlineBackend.name: InlineBackend,
    ProcessBackend.name: ProcessBackend,
}


class MarketHandle:
    """A constructed market plus the backend that will run it.

    The public surface of :func:`open_market`: ``run()`` executes the
    workload once (memoized), ``report()`` returns the same
    :class:`MarketReport`, ``backend`` names the execution backend.
    With the inline backend the underlying :class:`MarketCoordinator`
    is built eagerly and exposed as ``.market``, so tests and tools
    can inject faults or inspect chains before running; the
    ``processes`` backend owns its coordinators inside the workers and
    leaves ``.market`` as ``None``.
    """

    def __init__(self, workload, config: MarketConfig | None,
                 backend: ExecutionBackend):
        self.workload = workload
        self.config = config
        self.backend = backend
        self.market: MarketCoordinator | None = (
            MarketCoordinator(workload, config)
            if backend.name == InlineBackend.name
            else None
        )
        self._report: MarketReport | None = None

    def run(self) -> MarketReport:
        """Run the market to quiescence (once) and return its report."""
        if self._report is None:
            self._report = self.backend.execute(self)
        return self._report

    def report(self) -> MarketReport:
        """The run's report (runs the market if it has not run yet)."""
        return self.run()


def open_market(
    workload,
    config: MarketConfig | None = None,
    backend: str | ExecutionBackend = "inline",
) -> MarketHandle:
    """Open one market over ``workload`` and pick its execution backend.

    The public entry point of :mod:`repro.market`::

        from repro.market import open_market
        report = open_market(MarketWorkload(profile)).run()

    ``backend`` is ``"inline"`` (default: everything in-process),
    ``"processes"`` (one supervised worker per shard; same bytes, more
    cores), or an :class:`ExecutionBackend` instance.
    """
    if isinstance(backend, str):
        try:
            backend = _BACKENDS[backend]()
        except KeyError:
            raise MarketError(
                f"unknown execution backend {backend!r} "
                f"(expected one of {sorted(_BACKENDS)})"
            ) from None
    return MarketHandle(workload, config, backend)
