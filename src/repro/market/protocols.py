"""Per-deal commit-protocol drivers for the concurrent market.

PR 2's market committed every deal through a simplified
unanimity-order flow (one vote per party on a shared commit log).
This module drives the paper's two *real* atomic cross-chain commit
protocols through the same per-chain
:class:`~repro.market.mempool.StepMempool`\\ s and shared block space:

* :class:`TimelockDealDriver` — §5's timelock protocol.  One
  :class:`~repro.core.timelock.TimelockEscrow` is published per
  (deal, asset) with a common start time ``t0`` and deadline unit Δ;
  deposits and tentative transfers flow through the mempools, then
  every party's commit vote — a path signature from
  :mod:`repro.crypto.pathsig` — is submitted to **every** escrow of
  the deal (the O(n·m) vote fan-out of §7.1).  An escrow releases in
  the transaction that carries its last missing vote; a withheld vote
  means no escrow ever releases and the driver's refund sweep at the
  terminal deadline ``t0 + N·Δ`` refunds every deposit.

* :class:`CbcDealDriver` — §6's CBC protocol.  The deal is started on
  its home shard's :class:`~repro.consensus.bft.CertifiedBlockchain`
  (one ``startDeal`` entry — the unsharded market has exactly one
  such CBC), one
  :class:`~repro.core.cbc.CbcEscrow` is published per (deal, asset)
  with the definitive start hash and the CBC's initial validator keys,
  and parties vote commit (or abort) *on the CBC*, which batch-checks
  every vote arriving in a block interval with one combined Schnorr
  verification at block production (see
  :meth:`repro.consensus.bft.CertifiedBlockchain.submit`).  Once the CBC log
  is decisive, the driver extracts a quorum-signed
  :class:`~repro.core.proofs.StatusProof` and submits one
  proof-carrying commit/abort transaction per escrow; each proof is
  verified inside the block that executes it.  A stale-proof forger
  submits a certificate bound to a stale start hash before the deal
  decides — the contract must reject it.

Both drivers resolve contention the same way the book does: a deposit
that reverts (another deal drained the owner's wallet balance first)
is an escrow conflict, and the deal unwinds with every successful
deposit refunded — by terminal timeout for the timelock protocol (it
has no abort vote; §5) and by an abort vote plus abort proofs for the
CBC.

Faithfulness caveat (§5): timelock atomicity rests on the paper's Δ
assumption — a vote submitted in time must *execute* within Δ.  The
market submits direct (path length 1) votes and does not forward late
votes, so ``MarketConfig.timelock_delta`` must exceed the pipeline
depth (~3 block intervals) plus the worst mempool backlog; if a
congested chain pushes a vote past ``t0 + Δ`` while quieter chains
accept theirs, the deal settles non-atomically and the uniformity
invariant (:mod:`repro.market.invariants`) reports it — exactly the
failure mode the paper predicts when Δ is violated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.chain.tx import Receipt, Transaction
from repro.consensus.bft import DealStatus, LogEntry, StatusCertificate
from repro.core.cbc import CbcEscrow
from repro.core.escrow import EscrowState
from repro.core.proofs import StatusProof
from repro.core.timelock import TimelockEscrow
from repro.crypto.hashing import hash_concat
from repro.crypto.pathsig import sign_vote

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.market.runtime import MarketCoordinator, _DealRun


class DealDriver:
    """Shared machinery: per-deal escrow contracts behind the mempools.

    Drivers never touch a shard's mempool directly: every escrow step
    and vote goes through the coordinator's typed submit methods
    (:meth:`~repro.market.runtime.MarketCoordinator.submit_escrow_op`,
    :meth:`~repro.market.runtime.MarketCoordinator.submit_vote`), which
    route it over the shard bus to the owning
    :class:`~repro.market.runtime.ShardRuntime`.  Chain *reads* (escrow
    state peeks for sweeps and invariants) stay direct — they are
    observations, not market traffic.
    """

    def __init__(self, scheduler: "MarketCoordinator", run: "_DealRun"):
        self.scheduler = scheduler
        self.run = run
        self.spec = run.order.spec
        self.deal_id = self.spec.deal_id
        # asset_id -> on-chain escrow contract name, once published.
        self.escrow_names: dict[str, str] = {}
        self.deposits_done = 0
        self.transfers_done = 0
        self.released: set[str] = set()
        self.refunded: set[str] = set()
        self.escrow_failed = False

    # ------------------------------------------------------------------
    # Shared escrow plumbing
    # ------------------------------------------------------------------
    def _publish_escrows(self, factory) -> None:
        """Publish one escrow contract per asset and queue its funding.

        ``factory(asset, name)`` builds the protocol's contract.  The
        approve and deposit steps ride the asset chain's mempool in
        order, so they execute back to back inside one block.
        """
        scheduler = self.scheduler
        for asset in self.spec.assets:
            name = self.spec.escrow_contract_name(asset.asset_id)
            contract = factory(asset, name)
            scheduler.publish_deal_escrow(asset.chain_id, contract, self.deal_id,
                                          asset.asset_id)
            self.escrow_names[asset.asset_id] = name
            if asset.owner in self.run.order.no_show:
                continue  # adversarial owner: never escrows
            scheduler.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=asset.owner, contract=asset.token, method="approve",
                    args={"spender": contract.address, "amount": asset.amount},
                    phase="market/escrow-approve",
                ),
                self.deal_id,
                op="approve",
            )
            scheduler.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=asset.owner, contract=name, method="deposit",
                    args={}, phase="market/escrow",
                ),
                self.deal_id,
                op="deposit",
            )

    def _phase_change(self, phase: str, at: float) -> None:
        telemetry = self.scheduler.telemetry
        if telemetry is not None:
            telemetry.deal_phase(self.run, phase, at)

    def _submit_transfers(self) -> None:
        from repro.market.runtime import DealPhase

        self.run.phase = DealPhase.TRANSFER
        self._phase_change("transfer", self.scheduler.simulator.now)
        if not self.spec.steps:
            self._start_voting()
            return
        for step in self.spec.steps:
            asset = self.spec.asset(step.asset_id)
            self.scheduler.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=step.giver,
                    contract=self.escrow_names[step.asset_id],
                    method="transfer",
                    args={"to": step.receiver, "amount": step.amount},
                    phase="market/transfer",
                ),
                self.deal_id,
                op="transfer",
            )

    def _on_deposit(self, receipt: Receipt) -> None:
        if not receipt.ok:
            # Another deal drained the owner's wallet balance first —
            # the per-deal analogue of the book's escrow conflict.
            if not self.escrow_failed:
                self.escrow_failed = True
                self.run.conflict = True
                if not self.run.reason:
                    self.run.reason = "conflict"
                self._on_escrow_conflict()
            return
        self.deposits_done += 1
        if self.deposits_done == len(self.spec.assets):
            self._submit_transfers()

    def _on_transfer(self, receipt: Receipt) -> None:
        if not receipt.ok:
            if not self.run.reason:
                self.run.reason = "transfer-failed"
            return
        self.transfers_done += 1
        if self.transfers_done == len(self.spec.steps):
            self._start_voting()

    def _note_settled(self, asset_id: str, receipt: Receipt) -> None:
        """Record a Released/Refunded event and finish when uniform."""
        from repro.market.runtime import DealPhase

        for event in receipt.events:
            if event.name == "Released":
                self.released.add(asset_id)
            elif event.name == "Refunded":
                self.refunded.add(asset_id)
        if len(self.released) + len(self.refunded) < len(self.spec.assets):
            return
        # Timelock has no prior decision point, so the settled pattern
        # *is* the decision; a CBC deal keeps what its claim decided
        # (so a non-uniform settlement still reports against it).
        # A *mixed* timelock settlement — some escrows released, the
        # rest refunded at deadline — is §5's sore-loser outcome: the
        # votes made one chain in time and missed another.  Honest
        # infrastructure never produces it; the invariant sweep only
        # tolerates it when crash faults gated sealing mid-deal.
        if self.run.protocol == "timelock" and 0 < len(self.released) < len(
            self.spec.assets
        ):
            self.run.sore_loser = True
        if len(self.released) == len(self.spec.assets):
            if self.run.decided is None:
                self.run.decided = "commit"
            self.scheduler.finish(self.run, DealPhase.COMMITTED, "",
                                  receipt.executed_at)
        else:
            if self.run.decided is None:
                self.run.decided = "abort"
            self.scheduler.finish(
                self.run, DealPhase.ABORTED,
                self.run.reason or "unsettled", receipt.executed_at,
            )

    def escrow_states(self) -> dict[str, EscrowState]:
        """Each asset's escrow lifecycle state (for the invariants)."""
        states = {}
        for asset in self.spec.assets:
            name = self.escrow_names.get(asset.asset_id)
            if name is None:
                states[asset.asset_id] = None
                continue
            contract = self.scheduler.chains[asset.chain_id].contract(name)
            states[asset.asset_id] = contract.peek_state()
        return states

    # -- protocol hooks -------------------------------------------------
    def on_registered(self, receipt: Receipt) -> None:
        raise NotImplementedError

    def on_escrow_receipt(self, asset_id: str, receipt: Receipt) -> None:
        raise NotImplementedError

    def on_patience(self) -> None:
        raise NotImplementedError

    def _start_voting(self) -> None:
        raise NotImplementedError

    def _on_escrow_conflict(self) -> None:
        raise NotImplementedError


class TimelockDealDriver(DealDriver):
    """Drive one deal through §5's timelock protocol on shared chains."""

    def __init__(self, scheduler: "MarketCoordinator", run: "_DealRun"):
        super().__init__(scheduler, run)
        self.t0 = 0.0
        self.delta = scheduler.config.timelock_delta

    @property
    def terminal_deadline(self) -> float:
        """``t0 + N·Δ``: when refunds become possible (§5)."""
        return self.t0 + len(self.spec.parties) * self.delta

    def on_registered(self, receipt: Receipt) -> None:
        from repro.market.runtime import DealPhase

        self.run.phase = DealPhase.ESCROW
        self._phase_change("escrow", receipt.executed_at)
        self.t0 = receipt.executed_at
        self._publish_escrows(
            lambda asset, name: TimelockEscrow(
                name, self.deal_id, self.spec.parties, asset,
                t0=self.t0, delta=self.delta,
            )
        )
        # The protocol's only liveness guarantee: at the terminal
        # deadline no missing vote can ever be accepted, so whatever is
        # still active refunds.  One sweep per deal settles stragglers.
        self.scheduler.simulator.schedule_at(
            self.terminal_deadline, self._refund_sweep,
            label="market/timelock-terminal",
        )

    def _on_escrow_conflict(self) -> None:
        # No abort vote exists in the timelock protocol: timeouts play
        # that role (§5), so the deal just waits for its terminal sweep.
        pass

    def _start_voting(self) -> None:
        from repro.market.runtime import DealPhase

        self.run.phase = DealPhase.VOTING
        self._phase_change("voting", self.scheduler.simulator.now)
        scheduler = self.scheduler
        for party in self.run.order.voters():
            # A direct vote: path length 1, deadline t0 + Δ.  The
            # market plays the parties, so votes need no forwarding;
            # forwarded (longer) paths are exercised by the per-deal
            # executor and the protocol tests.
            path = sign_vote(scheduler.keypair_for(party), self.deal_id)
            for asset in self.spec.assets:
                scheduler.submit_vote(
                    asset.chain_id,
                    Transaction(
                        sender=party,
                        contract=self.escrow_names[asset.asset_id],
                        method="commit",
                        args={"path": path},
                        phase="market/commit",
                    ),
                    self.deal_id,
                )

    def on_escrow_receipt(self, asset_id: str, receipt: Receipt) -> None:
        method = receipt.tx.method
        if method == "deposit":
            self._on_deposit(receipt)
        elif method == "transfer":
            self._on_transfer(receipt)
        elif method == "commit":
            # A rejected vote (late past its path deadline, duplicate,
            # or bounced off a terminated escrow) needs no action: the
            # terminal sweep settles whatever did not release.
            if receipt.ok:
                self._note_settled(asset_id, receipt)
        elif method == "refund":
            if receipt.ok:
                self._note_settled(asset_id, receipt)

    def on_patience(self) -> None:
        # Patience is the unanimity/CBC escape hatch; the timelock
        # protocol's own terminal deadline is the refund trigger.
        pass

    def _refund_sweep(self) -> None:
        if self.run.terminal:
            return
        # The terminal deadline is the §5 timeout, not a scheduler
        # patience expiry — keep the reasons (and the report's
        # "patience timeouts" row) distinct.
        if not self.run.reason:
            self.run.reason = "deadline"
        scheduler = self.scheduler
        scheduler.stats["timelock_refund_sweeps"] += 1
        telemetry = scheduler.telemetry
        if telemetry is not None:
            telemetry.deal_event(
                self.deal_id, "refund-sweep", deadline=self.terminal_deadline
            )
        for asset in self.spec.assets:
            name = self.escrow_names[asset.asset_id]
            contract = scheduler.chains[asset.chain_id].contract(name)
            if contract.peek_state() is not EscrowState.ACTIVE:
                continue
            scheduler.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=scheduler.coordinator.address, contract=name,
                    method="refund", args={}, phase="market/refund",
                ),
                self.deal_id,
                op="refund",
            )


class CbcDealDriver(DealDriver):
    """Drive one deal through §6's CBC protocol on shared chains."""

    def __init__(self, scheduler: "MarketCoordinator", run: "_DealRun"):
        super().__init__(scheduler, run)
        self.start_hash: bytes | None = None
        self.abort_vote_sent = False
        self.abort_when_started = False
        self._stale_proof: "StatusProof | None" = None
        # The deal resolves against its home shard's CBC and nothing
        # else: its escrows learn that CBC's validator keys, so a
        # proof replayed from another shard's log cannot verify.
        self.cbc = None

    def on_registered(self, receipt: Receipt) -> None:
        from repro.market.runtime import DealPhase

        self.run.phase = DealPhase.ESCROW
        self._phase_change("escrow", receipt.executed_at)
        cbc = self.cbc = self.scheduler.ensure_cbc(self.run.home_shard)
        opener = self.spec.parties[0]
        entry = LogEntry(
            kind="startDeal", deal_id=self.deal_id, party=opener,
            plist=self.spec.parties,
        )
        cbc.submit(replace(
            entry,
            signature=self.scheduler.keypair_for(opener).sign(entry.message()),
        ))

    def on_cbc_block(self) -> None:
        """React to new CBC state: the start landing, then the decision."""
        cbc = self.cbc
        if cbc is None:
            # The shard's CBC (created by an earlier deal) is already
            # producing blocks, but this deal's registration has not
            # sealed yet — nothing to react to.
            return
        if self.start_hash is None:
            start_hash = cbc.definitive_start_hash(self.deal_id)
            if start_hash is None:
                return
            self.start_hash = start_hash
            self._publish_escrows(
                lambda asset, name: CbcEscrow(
                    name, self.deal_id, self.spec.parties, asset,
                    start_hash=start_hash,
                    validator_keys=cbc.initial_public_keys,
                )
            )
            if self.abort_when_started:
                # An abort requested before the startDeal landed could
                # not reference the definitive start hash; cast it now.
                self.abort_when_started = False
                self._request_abort()
            return
        if self.run.decided is not None or self.run.terminal:
            return
        status = cbc.deal_status(self.deal_id, self.start_hash)
        if status is DealStatus.COMMITTED:
            self._claim("commit")
        elif status is DealStatus.ABORTED:
            self._claim("abort")

    def _claim(self, outcome: str) -> None:
        from repro.market.runtime import DealPhase

        self.run.decided = outcome
        self.run.phase = DealPhase.SETTLING
        self._phase_change("settling", self.scheduler.simulator.now)
        certificate = self.cbc.status_certificate(self.deal_id)
        proof = StatusProof(certificate=certificate)
        for asset in self.spec.assets:
            self.scheduler.submit_escrow_op(
                asset.chain_id,
                Transaction(
                    sender=self.scheduler.coordinator.address,
                    contract=self.escrow_names[asset.asset_id],
                    method=outcome,
                    args={"proof": proof},
                    phase=f"market/{outcome}-claim",
                ),
                self.deal_id,
                op=outcome,
            )

    def _vote(self, party, kind: str) -> None:
        entry = LogEntry(
            kind=kind, deal_id=self.deal_id, party=party,
            start_hash=self.start_hash or b"",
        )
        self.cbc.submit(replace(
            entry,
            signature=self.scheduler.keypair_for(party).sign(entry.message()),
        ))

    def _start_voting(self) -> None:
        from repro.market.runtime import DealPhase

        self.run.phase = DealPhase.VOTING
        self._phase_change("voting", self.scheduler.simulator.now)
        for party in self.run.order.voters():
            self._vote(party, "commit")
        for forger in self.run.order.stale_proof:
            self._forge_stale_proof(forger)

    def _forge_stale_proof(self, forger) -> None:
        """Present a certificate bound to a stale start hash (§6.2).

        The certificate is genuinely quorum-signed — the attack is the
        *binding*: it certifies a superseded ``startDeal``, so the
        escrow's start-hash check must reject it before any signature
        is even considered.  The forged certificate is built once per
        deal and reused by every forger in the plist (the attack bytes
        are identical, so re-signing per forger is pure waste).
        """
        if self._stale_proof is None:
            stale_start = hash_concat(b"repro/market/stale-start", self.deal_id)
            validators = self.cbc.validators
            message = StatusCertificate.message(
                self.deal_id, stale_start, DealStatus.COMMITTED, validators.epoch
            )
            self._stale_proof = StatusProof(certificate=StatusCertificate(
                deal_id=self.deal_id,
                start_hash=stale_start,
                status=DealStatus.COMMITTED,
                epoch=validators.epoch,
                signatures=validators.quorum_sign(message),
            ))
        target = self.spec.assets[0]
        self.scheduler.submit_escrow_op(
            target.chain_id,
            Transaction(
                sender=forger,
                contract=self.escrow_names[target.asset_id],
                method="commit",
                args={"proof": self._stale_proof},
                phase="market/stale-proof",
            ),
            self.deal_id,
            op="stale-proof",
        )

    def _on_escrow_conflict(self) -> None:
        self._request_abort()

    def _request_abort(self) -> None:
        if self.abort_vote_sent or self.run.decided is not None:
            return
        if self.start_hash is None:
            self.abort_when_started = True
            return
        self.abort_vote_sent = True
        # Any party may rescind; the first non-withholding party plays
        # the role of the one who wants its escrow back.
        voters = self.run.order.voters() or self.spec.parties
        self._vote(voters[0], "abort")

    def on_escrow_receipt(self, asset_id: str, receipt: Receipt) -> None:
        if receipt.tx.phase == "market/stale-proof":
            if receipt.ok:
                # The contract accepted a stale proof: a safety break
                # the invariants must surface, never silently absorb.
                self.scheduler.protocol_violations.append(
                    f"deal #{self.run.order.index}: stale proof accepted "
                    f"by {receipt.tx.contract}"
                )
            else:
                self.scheduler.stats["stale_proofs_rejected"] += 1
            return
        method = receipt.tx.method
        if method == "deposit":
            self._on_deposit(receipt)
        elif method == "transfer":
            self._on_transfer(receipt)
        elif method in ("commit", "abort"):
            if receipt.ok:
                self._note_settled(asset_id, receipt)

    def on_patience(self) -> None:
        if self.run.decided is None and not self.run.terminal:
            if not self.run.reason:
                self.run.reason = "timeout"
            self._request_abort()
