"""The typed messages of the shard-runtime API.

The market coordinator and its per-shard
:class:`~repro.market.runtime.ShardRuntime`\\ s communicate *only*
through the frozen payload types below, wrapped in the uniform
:class:`~repro.sim.network.Envelope` (sender, shard, tick, payload)
and carried by a :class:`~repro.sim.network.LocalBus` (inline
backend) or replayed identically inside every worker of the
``processes`` backend.  Each type names one protocol edge:

* :class:`SubmitOrder` — coordinator → home shard: register a signed
  deal order on the shard's commit log (the runtime builds the
  on-chain registration transaction itself).
* :class:`CrossShardEscrowOp` — coordinator → asset shard: publish a
  per-deal escrow contract or submit one escrow step (``open``,
  ``approve``, ``deposit``, ``transfer``, ``refund``, ``claim``) to
  the asset chain's mempool.
* :class:`VoteFanout` — coordinator → shard: a commit-log vote or
  abort mark on the deal's home shard, or a §5 path-signature vote
  fanned to a timelock escrow's chain.
* :class:`DealDecided` — coordinator → asset shard: the home commit
  log decided; claim (commit/abort) the deal's book escrows on one
  chain.
* :class:`SealBatch` / :class:`SealVerdict` — shard → verify service
  and back: one sealed block's merged order-signature batch, keyed
  ``(chain_id, seq)`` so the ``processes`` backend can partition the
  actual verification work across workers and exchange verdicts.
* :class:`BlockReceipts` — shard → coordinator: one sealed block's
  receipts, which the coordinator's phase engine routes to deal state
  machines.
* :class:`DeltaShipment` / :class:`DeltaAck` — replication plane:
  sealed-block write-set shipping leader → follower and the
  follower's sequence acknowledgement (these two ride the dedicated
  replication :class:`~repro.sim.network.SynchronousNetwork`, not the
  bus, but share the Envelope wrapper so network fault stats cover
  them uniformly).
* :class:`TelemetrySpan` — worker 0 → parent process: the run's
  telemetry export, shipped once at quiescence by the ``processes``
  backend (inline runs never serialize telemetry).

**At-least-once delivery.**  Under a chaotic bus
(:class:`~repro.sim.network.ChaosBus`) every envelope carries a
per-(sender, recipient) monotonic ``msg_id`` (a sender sequence
number), the transport acks each delivery with a
:class:`~repro.sim.network.BusAck`, and unacked envelopes are resent
on a capped exponential backoff.  At-least-once means handlers *will*
see duplicates; each handler guards itself with a
:class:`DedupWindow`, which suppresses any (sender, msg_id) it has
already admitted — making replayed, duplicated, and reordered
delivery indistinguishable from exact delivery at the state level.
``msg_id == 0`` (the plain bus) bypasses the window entirely.

Every type is a frozen dataclass of picklable fields; nothing here
imports the runtime, so the vocabulary is dependency-free and safe to
unpickle in a bare worker process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import BusAck, Envelope

__all__ = [
    "Envelope",
    "BusAck",
    "DedupWindow",
    "SubmitOrder",
    "CrossShardEscrowOp",
    "VoteFanout",
    "DealDecided",
    "SealBatch",
    "SealVerdict",
    "BlockReceipts",
    "DeltaShipment",
    "DeltaAck",
    "TelemetrySpan",
]


class DedupWindow:
    """Suppress duplicate reliable envelopes at one endpoint.

    Tracks, per sender, a contiguous *floor* (every ``msg_id`` at or
    below it has been admitted) plus the sparse set of admitted ids
    above it.  Because :class:`~repro.sim.network.ChaosBus` stamps
    ``msg_id`` per (sender, recipient) pair, the ids arriving at one
    endpoint from one sender are gap-free once delivery settles, so
    the floor advances and the set stays small.  A *permanently*
    missing low id (possible only if the transport gave up resending —
    the ChaosBus never does) would pin the floor below the gap and let
    ``_seen`` grow with one entry per later id until the gap fills;
    that growth is bounded by the sender's in-flight window under
    at-least-once delivery, and the regression tests document the
    stuck-floor behaviour explicitly.  ``stats`` (optional)
    is a counter dict whose ``"dup_suppressed"`` key is bumped on
    every suppression — the market passes the bus's own stats dict so
    suppression shows up next to the chaos counters.
    """

    def __init__(self, stats: dict | None = None):
        self._floor: dict[str, int] = {}
        self._seen: dict[str, set[int]] = {}
        self._stats = stats

    def duplicate(self, envelope: Envelope) -> bool:
        """Admit ``envelope`` once; True if it was already admitted."""
        msg_id = envelope.msg_id
        if not msg_id:
            return False
        sender = envelope.sender
        floor = self._floor.get(sender, 0)
        seen = self._seen.setdefault(sender, set())
        if msg_id <= floor or msg_id in seen:
            if self._stats is not None:
                # ``.get``: only the ChaosBus pre-seeds this key, but a
                # window can sit over a plain LocalBus (whose stats
                # dict has no chaos keys) and still see a nonzero
                # msg_id — e.g. replayed or test-injected envelopes.
                self._stats["dup_suppressed"] = (
                    self._stats.get("dup_suppressed", 0) + 1
                )
            return True
        seen.add(msg_id)
        while floor + 1 in seen:
            floor += 1
            seen.discard(floor)
        self._floor[sender] = floor
        return False


@dataclass(frozen=True)
class SubmitOrder:
    """Register a signed order on its home shard's commit log."""

    deal_id: bytes
    order: object  # SignedDealOrder


@dataclass(frozen=True)
class CrossShardEscrowOp:
    """One escrow-plane operation on an asset chain.

    ``op == "publish"`` carries the per-deal escrow ``contract`` to
    publish; every other op carries the ready-signed transaction
    ``tx`` for the chain's mempool.
    """

    deal_id: bytes
    chain_id: str
    op: str
    tx: object | None = None  # Transaction
    contract: object | None = None  # Contract (publish only)
    asset_id: str = ""


@dataclass(frozen=True)
class VoteFanout:
    """A vote (or abort mark) fanned out to one chain's mempool."""

    deal_id: bytes
    chain_id: str
    tx: object  # Transaction


@dataclass(frozen=True)
class DealDecided:
    """The home log decided: claim the deal's book escrows on a chain."""

    deal_id: bytes
    chain_id: str
    method: str  # "commit" | "abort"


@dataclass(frozen=True)
class SealBatch:
    """One sealed block's merged order-signature batch.

    ``items`` are ``(public_key, message, signature)`` triples; the
    ``(chain_id, seq)`` key is assigned per chain in seal order, so
    every execution backend agrees on which worker owns the batch and
    which verdict belongs to it.
    """

    chain_id: str
    seq: int
    items: tuple


@dataclass(frozen=True)
class SealVerdict:
    """The verify service's answer to one :class:`SealBatch`."""

    chain_id: str
    seq: int
    ok: bool


@dataclass(frozen=True)
class BlockReceipts:
    """One sealed block's receipts, for the coordinator's phase engine."""

    chain_id: str
    height: int
    receipts: tuple


@dataclass(frozen=True)
class DeltaShipment:
    """A sealed block's write-set, shipped leader → follower."""

    chain_id: str
    seq: int
    delta: object  # repro.chain.ledger.StateDelta


@dataclass(frozen=True)
class DeltaAck:
    """A follower's highest-applied sequence acknowledgement."""

    follower: str
    chain_id: str
    seq: int


@dataclass(frozen=True)
class TelemetrySpan:
    """A telemetry export shipped across the process boundary."""

    kind: str
    payload: object
