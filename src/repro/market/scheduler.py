"""Deprecated home of the market scheduler (one-release shim).

The 1,200-line ``DealScheduler`` god-object that used to live here was
carved into the message-passing runtime of
:mod:`repro.market.runtime`: a thin :class:`MarketCoordinator` over
per-shard :class:`~repro.market.runtime.ShardRuntime`\\ s, talking
only through the typed envelopes of :mod:`repro.market.messages`.
Use the public entry point instead::

    from repro.market import open_market
    report = open_market(workload, config).run()

Every historical name is re-exported below so old imports keep
working; constructing :class:`DealScheduler` emits a
``DeprecationWarning`` and the shim will be removed one release from
now.
"""

from __future__ import annotations

import warnings

from repro.market.runtime import (  # noqa: F401 - re-exported compatibility surface
    BOOK_CONTRACT,
    COMMIT_LOG_CONTRACT,
    DealPhase,
    MarketConfig,
    MarketCoordinator,
    MarketReport,
    _ABORT_RETRY_LIMIT,
    _DealRun,
    _percentile,
)

__all__ = [
    "BOOK_CONTRACT",
    "COMMIT_LOG_CONTRACT",
    "DealPhase",
    "DealScheduler",
    "MarketConfig",
    "MarketCoordinator",
    "MarketReport",
]


class DealScheduler(MarketCoordinator):
    """Deprecated alias of :class:`~repro.market.runtime.MarketCoordinator`.

    Behaviour-identical (it *is* the coordinator); only the name and
    the module are deprecated.
    """

    def __init__(self, workload, config: MarketConfig | None = None,
                 verifier=None):
        warnings.warn(
            "DealScheduler is deprecated; use repro.market.open_market() "
            "(or repro.market.runtime.MarketCoordinator for direct "
            "construction). The repro.market.scheduler shim will be "
            "removed one release from now.",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(workload, config, verifier=verifier)
