"""Per-shard replication and crash recovery for the sharded market.

Every shard of the :class:`~repro.market.runtime.MarketCoordinator`
becomes a small **replica group** (configurable factor ``r``): ``r``
processes that each hold a full image of *that shard's chains only* —
the home chain with its :class:`~repro.market.commitlog.MarketCommitLog`
plus the shard's asset chains with their
:class:`~repro.market.book.MarketEscrowBook`s.  This is partial
replication in the sense of Sutra & Shapiro: no replica holds the
whole market, and a cross-shard deal touches exactly the replica
groups its assets name.

**Replication unit.**  The sealed block is the unit of replication.
When a chain flushes a block's committed write-set (a *delta*, see
:data:`repro.chain.ledger.StateDelta`), the delta is appended to the
group's durable log, applied synchronously by the shard **leader**
(co-located with the authoritative chain), and shipped to the
followers over a dedicated
:class:`~repro.sim.network.SynchronousNetwork`.  Followers apply
deltas in sequence order and acknowledge back to the leader on
simulated time, so the whole exchange is deterministic and visible in
``Network.stats()``.  A follower that observes a sequence gap (a
dropped or reordered shipment) heals itself by replaying the missing
range from the group log — anti-entropy, not an error.

**Crash and recovery.**  :class:`~repro.sim.faults.ReplicaCrash` kills
a replica: its in-memory image is discarded, a crash-time durable
snapshot (what it had applied — sealed blocks are persisted before
they are acknowledged) is retained, and its endpoint goes silent.  If
the crashed replica led the shard, sealing on every one of the shard's
mempools is **gated closed**: orders queue but no block seals, which
is a liveness loss, never a safety loss, because the authoritative
chain and the group log retain every committed block.  After a
detection timeout the group **fails over** to the lowest-indexed live
replica, which catches up from the group log and reopens the gates
(the mempools are kicked, never polled).  Recovery restores the
crash-time snapshot, replays the group log across the dead window,
and then proves itself: the recovered image's canonical digest
(:func:`repro.chain.ledger.digest_state`) must equal the authoritative
chain's — a mismatch is reported as an invariant violation.

**Determinism.**  The replication network draws latencies from its own
seeded stream, so enabling replication (or changing ``r``) perturbs no
market randomness; with no crash faults the seal gates never close,
and the market's outcome log — hence its fingerprint — is
byte-identical to an unreplicated run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.ledger import Chain, StateDelta, digest_state
from repro.market.messages import DeltaAck, DeltaShipment
from repro.sim.network import Envelope, SynchronousNetwork
from repro.sim.rng import DeterministicRng

# Replica endpoint names are "s<shard>/r<index>" on the replication
# network; fault schedules target them by this name.
def replica_name(shard: int, index: int) -> str:
    """The canonical endpoint name of one replica."""
    return f"s{shard}/r{index}"


@dataclass
class Replica:
    """One process of a shard's replica group.

    ``state`` maps each of the shard's chain ids to a contract-state
    image (``{contract: {storage: {key: value}}}``); ``applied`` is
    the per-chain sequence number of the last delta applied.  ``disk``
    holds the crash-time durable snapshot a recovery restores from.
    """

    name: str
    shard: int
    index: int
    alive: bool = True
    state: dict = field(default_factory=dict)
    applied: dict = field(default_factory=dict)
    disk: tuple | None = None  # (state_copy, applied_copy) at crash

    def image_of(self, chain_id: str) -> dict:
        """The replica's contract-state image of one chain."""
        return self.state.setdefault(chain_id, {})

    def copy_state(self) -> dict:
        """Deep-enough copy of the whole image (values are immutable)."""
        return {
            chain_id: {
                contract: {name: dict(data) for name, data in storages.items()}
                for contract, storages in chains.items()
            }
            for chain_id, chains in self.state.items()
        }


@dataclass
class ShardReplicaGroup:
    """One shard's replicas, durable delta log, and leadership state."""

    shard: int
    chain_ids: tuple[str, ...]
    replicas: list[Replica] = field(default_factory=list)
    # Durable per-chain delta log (the chain is the log; this is its
    # replication-facing index).  logs[chain_id][seq - 1] is delta seq.
    logs: dict[str, list[StateDelta]] = field(default_factory=dict)
    leader: str | None = None
    election_pending: bool = False
    down_since: float | None = None
    downtime: float = 0.0
    # follower name -> {chain_id: highest acked seq} (leader's view).
    acked: dict[str, dict[str, int]] = field(default_factory=dict)
    # Backref to the owning ReplicationLayer (set at construction).
    layer: object | None = None

    def apply_delta(
        self, replica: Replica, chain_id: str, seq: int, delta
    ) -> str:
        """Apply one shipped delta to ``replica``, idempotently.

        Returns ``"duplicate"`` (seq already applied — replayed or
        duplicated shipment, a no-op), ``"applied"`` (seq was next, one
        apply), or ``"healed"`` (seq exposed a gap; the missing range
        was replayed from the group log first).  This is the public
        idempotency seam the chaos property tests replay against.
        """
        return self.layer._apply_shipment(replica, chain_id, seq, delta)

    def alive_replicas(self) -> list[Replica]:
        return [replica for replica in self.replicas if replica.alive]

    def leader_replica(self) -> Replica | None:
        if self.leader is None:
            return None
        for replica in self.replicas:
            if replica.name == self.leader:
                return replica
        return None

    @property
    def sealing_open(self) -> bool:
        """Whether this shard currently has a live leader sealing blocks."""
        replica = self.leader_replica()
        return replica is not None and replica.alive


class ReplicationLayer:
    """Replica groups, delta shipping, failover, and recovery."""

    def __init__(
        self,
        scheduler,
        factor: int,
        delta: float = 0.4,
        failover_timeout: float = 2.0,
        reliable: bool = False,
        ack_timeout: float = 2.0,
        backoff_cap: float = 16.0,
    ):
        if factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.scheduler = scheduler
        self.simulator = scheduler.simulator
        self.factor = factor
        self.failover_timeout = failover_timeout
        # Reliable shipping (chaos runs only): the leader watches its
        # highest shipped seq per (follower, chain) and resends on a
        # capped exponential backoff until acked.  Off by default — the
        # watch timers are simulator events, and a chaos-free run must
        # schedule nothing beyond the PR 6 baseline.
        self.reliable = reliable
        self.ack_timeout = ack_timeout
        self.backoff_cap = backoff_cap
        # (follower name, chain_id) -> [watched seq, attempt, timer]
        self._ship_watch: dict[tuple[str, str], list] = {}
        # Telemetry hook: crash/recover/failover spans and delta-ship
        # events ride the run's tracer.  Observational only.
        self.telemetry = getattr(scheduler, "telemetry", None)
        # A dedicated network with its own seeded stream: replication
        # traffic must not perturb the market's latency draws.
        self.network = SynchronousNetwork(
            self.simulator,
            delta,
            rng=DeterministicRng(f"market-replication/{scheduler.workload.seed}"),
        )
        self.groups: dict[int, ShardReplicaGroup] = {}
        self.replicas: dict[str, Replica] = {}
        self.violations: list[str] = []
        self.counters = {
            "deltas_logged": 0,
            "deltas_shipped": 0,
            "deltas_applied": 0,
            "deltas_replayed": 0,
            "acks_received": 0,
            "crashes": 0,
            "recoveries": 0,
            "failovers": 0,
            "snapshots_taken": 0,
            "snapshots_restored": 0,
            "hash_checks": 0,
            "hash_mismatches": 0,
            "dropped_while_dead": 0,
        }
        if reliable:
            self.counters["deltas_resent"] = 0

        shard_chains: dict[int, list[str]] = {}
        for chain_id, shard in scheduler.chain_shard.items():
            shard_chains.setdefault(shard, []).append(chain_id)
        for shard in range(scheduler.shards):
            chain_ids = tuple(shard_chains.get(shard, ()))
            group = ShardReplicaGroup(
                shard=shard,
                chain_ids=chain_ids,
                logs={chain_id: [] for chain_id in chain_ids},
                layer=self,
            )
            for index in range(factor):
                replica = Replica(
                    name=replica_name(shard, index), shard=shard, index=index
                )
                # Bootstrap from the post-funding chain snapshot, so
                # every replica starts byte-identical to its group.
                for chain_id in chain_ids:
                    replica.state[chain_id] = scheduler.chains[chain_id].snapshot()
                    replica.applied[chain_id] = 0
                group.replicas.append(replica)
                self.replicas[replica.name] = replica
                self.network.register(
                    replica.name,
                    lambda message, replica=replica: self._on_message(
                        replica, message
                    ),
                )
            group.leader = group.replicas[0].name
            self.groups[shard] = group
        # Hook the authoritative chains and gate the mempools.
        for chain_id, chain in scheduler.chains.items():
            chain.delta_observer = self._on_chain_delta
            shard = scheduler.chain_shard[chain_id]
            scheduler.mempools[chain_id].seal_gate = (
                lambda shard=shard: self.groups[shard].sealing_open
            )

    # ------------------------------------------------------------------
    # Delta intake and shipping
    # ------------------------------------------------------------------
    def _on_chain_delta(self, chain: Chain, delta: StateDelta) -> None:
        shard = self.scheduler.chain_shard[chain.chain_id]
        group = self.groups[shard]
        log = group.logs[chain.chain_id]
        log.append(delta)
        seq = len(log)
        self.counters["deltas_logged"] += 1
        leader = group.leader_replica()
        if leader is not None and leader.alive:
            # The leader is co-located with the authoritative chain:
            # it applies the sealed block synchronously.
            self._apply_to(leader, chain.chain_id, seq, delta)
            for replica in group.replicas:
                if replica is leader or not replica.alive:
                    continue
                # Delta shipments ride the same typed Envelope as every
                # other market plane (sim.network.Envelope), so the
                # network's filter/drop/delay stats and the fault
                # injectors treat them uniformly.
                self.network.send(
                    leader.name,
                    replica.name,
                    Envelope(
                        sender=leader.name,
                        shard=shard,
                        tick=self.simulator.now,
                        payload=DeltaShipment(
                            chain_id=chain.chain_id, seq=seq, delta=delta
                        ),
                    ),
                )
                self.counters["deltas_shipped"] += 1
                if self.telemetry is not None:
                    self.telemetry.delta_shipped(shard, chain.chain_id, seq)
                if self.reliable:
                    self._watch_shipment(group, replica.name, chain.chain_id, seq)
        # With no live leader nothing ships: followers heal from the
        # group log at failover/recovery time (anti-entropy).

    # ------------------------------------------------------------------
    # Reliable shipping (chaos runs): watch, resend, back off
    # ------------------------------------------------------------------
    def _watch_shipment(
        self, group: ShardReplicaGroup, follower: str, chain_id: str, seq: int
    ) -> None:
        """Watch the highest shipped seq to one follower until acked.

        A newer shipment supersedes the watch (the follower's gap-heal
        replays anything older from the log, so only the newest seq
        needs the resend guarantee).
        """
        key = (follower, chain_id)
        watch = self._ship_watch.get(key)
        if watch is not None and watch[2] is not None:
            watch[2].cancel()
        entry = [seq, 0, None]
        self._ship_watch[key] = entry
        entry[2] = self.simulator.schedule(
            self.ack_timeout,
            lambda: self._check_shipment(group, key),
            label=f"replication/resend-{follower}",
        )

    def _check_shipment(
        self, group: ShardReplicaGroup, key: tuple[str, str]
    ) -> None:
        entry = self._ship_watch.get(key)
        if entry is None:
            return
        follower, chain_id = key
        seq, attempt, _ = entry
        replica = self.replicas.get(follower)
        acked = group.acked.get(follower, {}).get(chain_id, 0)
        if (
            acked >= seq
            or replica is None
            or not replica.alive
            or group.leader is None
            or attempt >= 6
        ):
            # Satisfied, moot (dead follower / leaderless shard), or
            # out of patience — finish()'s anti-entropy backstops.
            self._ship_watch.pop(key, None)
            return
        leader = group.leader_replica()
        delta = group.logs[chain_id][seq - 1]
        self.network.send(
            leader.name,
            follower,
            Envelope(
                sender=leader.name,
                shard=group.shard,
                tick=self.simulator.now,
                payload=DeltaShipment(chain_id=chain_id, seq=seq, delta=delta),
            ),
        )
        self.counters["deltas_resent"] += 1
        entry[1] = attempt + 1
        entry[2] = self.simulator.schedule(
            min(self.ack_timeout * (2.0 ** entry[1]), self.backoff_cap),
            lambda: self._check_shipment(group, key),
            label=f"replication/resend-{follower}",
        )

    def _apply_to(
        self, replica: Replica, chain_id: str, seq: int, delta: StateDelta
    ) -> None:
        """Apply one delta to a replica image (``seq`` must be next)."""
        image = replica.image_of(chain_id)
        if delta["kind"] == "init":
            image[delta["contract"]] = {
                name: dict(data) for name, data in delta["state"].items()
            }
        else:
            for contract, storage, key, value in delta["writes"]:
                image.setdefault(contract, {}).setdefault(storage, {})[key] = value
            for contract, storage, key in delta["deletes"]:
                image.get(contract, {}).get(storage, {}).pop(key, None)
        replica.applied[chain_id] = seq
        self.counters["deltas_applied"] += 1

    def _apply_shipment(
        self, replica: Replica, chain_id: str, seq: int, delta: StateDelta
    ) -> str:
        """Idempotent shipment intake (the body of group.apply_delta)."""
        applied = replica.applied.get(chain_id, 0)
        if seq <= applied:
            return "duplicate"  # already applied or replayed — no-op
        if seq == applied + 1:
            self._apply_to(replica, chain_id, seq, delta)
            return "applied"
        # Gap (an earlier shipment was dropped): heal from the log.
        group = self.groups[replica.shard]
        log = group.logs[chain_id]
        replayed = 0
        while replica.applied.get(chain_id, 0) < min(seq, len(log)):
            next_seq = replica.applied.get(chain_id, 0) + 1
            self._apply_to(replica, chain_id, next_seq, log[next_seq - 1])
            replayed += 1
        self.counters["deltas_replayed"] += replayed
        return "healed"

    def _catch_up(self, replica: Replica) -> int:
        """Replay every group-log delta the replica is missing."""
        group = self.groups[replica.shard]
        replayed = 0
        for chain_id in group.chain_ids:
            log = group.logs[chain_id]
            applied = replica.applied.get(chain_id, 0)
            while applied < len(log):
                self._apply_to(replica, chain_id, applied + 1, log[applied])
                applied += 1
                replayed += 1
        self.counters["deltas_replayed"] += replayed
        return replayed

    def _on_message(self, replica: Replica, message) -> None:
        payload = message.payload
        if isinstance(payload, Envelope):
            payload = payload.payload
        if isinstance(payload, DeltaAck):
            group = self.groups[replica.shard]
            high = group.acked.setdefault(payload.follower, {})
            high[payload.chain_id] = max(
                high.get(payload.chain_id, 0), payload.seq
            )
            self.counters["acks_received"] += 1
            if self.reliable:
                key = (payload.follower, payload.chain_id)
                watch = self._ship_watch.get(key)
                if watch is not None and payload.seq >= watch[0]:
                    if watch[2] is not None:
                        watch[2].cancel()
                    self._ship_watch.pop(key, None)
            return
        chain_id, seq, delta = payload.chain_id, payload.seq, payload.delta
        if not replica.alive:
            # A shipment racing a crash: the dead process sees nothing.
            self.counters["dropped_while_dead"] += 1
            return
        self._apply_shipment(replica, chain_id, seq, delta)
        # Acknowledge on simulated time so the leader's view of
        # replication lag is an observable quantity.
        target = self.groups[replica.shard].leader
        if target is not None and target != replica.name:
            self.network.send(
                replica.name,
                target,
                Envelope(
                    sender=replica.name,
                    shard=replica.shard,
                    tick=self.simulator.now,
                    payload=DeltaAck(
                        follower=replica.name,
                        chain_id=chain_id,
                        seq=replica.applied.get(chain_id, 0),
                    ),
                ),
            )

    # ------------------------------------------------------------------
    # Process faults (FaultPlan.install_processes host API)
    # ------------------------------------------------------------------
    def crash_replica(self, name: str) -> None:
        """Kill a replica: persist its crash-time image, lose memory."""
        replica = self.replicas.get(name)
        if replica is None or not replica.alive:
            return
        replica.alive = False
        self.counters["crashes"] += 1
        if self.telemetry is not None:
            self.telemetry.replica_crashed(name, replica.shard)
        # Sealed blocks are persisted before acknowledgement, so the
        # durable snapshot is exactly what the replica had applied.
        replica.disk = (replica.copy_state(), dict(replica.applied))
        self.counters["snapshots_taken"] += 1
        replica.state = {}
        replica.applied = {}
        group = self.groups[replica.shard]
        if group.leader == name:
            self._on_leader_lost(group)

    def recover_replica(self, name: str) -> None:
        """Revive a replica: restore snapshot, replay, prove the hash."""
        replica = self.replicas.get(name)
        if replica is None or replica.alive:
            return
        self.counters["recoveries"] += 1
        if replica.disk is not None:
            state, applied = replica.disk
            replica.state = {
                chain_id: {
                    contract: {n: dict(d) for n, d in storages.items()}
                    for contract, storages in chains.items()
                }
                for chain_id, chains in state.items()
            }
            replica.applied = dict(applied)
            self.counters["snapshots_restored"] += 1
        replica.alive = True
        replayed = self._catch_up(replica)
        if self.telemetry is not None:
            self.telemetry.replica_recovered(name, replica.shard, replayed)
        self._verify_replica(replica, context="post-recovery")
        group = self.groups[replica.shard]
        if not group.sealing_open and not group.election_pending:
            # The shard was fully down: the recovered replica takes
            # over immediately (no detection delay — the revival *is*
            # the detection).
            self._elect(group)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _on_leader_lost(self, group: ShardReplicaGroup) -> None:
        group.leader = None
        if group.down_since is None:
            group.down_since = self.simulator.now
            if self.telemetry is not None:
                self.telemetry.leader_lost(group.shard)
        if not group.election_pending:
            group.election_pending = True
            self.simulator.schedule(
                self.failover_timeout,
                lambda: self._run_election(group),
                label=f"replication/failover-s{group.shard}",
            )

    def _run_election(self, group: ShardReplicaGroup) -> None:
        group.election_pending = False
        self._elect(group)

    def _elect(self, group: ShardReplicaGroup) -> None:
        """Promote the lowest-indexed live replica and resume sealing."""
        candidate = None
        for replica in group.replicas:
            if replica.alive:
                candidate = replica
                break
        if candidate is None:
            return  # fully down; the next recovery re-elects
        group.leader = candidate.name
        self.counters["failovers"] += 1
        if self.telemetry is not None:
            self.telemetry.leader_elected(group.shard, candidate.name)
        # The new leader must own every sealed block before it seals
        # new ones on top.
        self._catch_up(candidate)
        if group.down_since is not None:
            group.downtime += self.simulator.now - group.down_since
            group.down_since = None
        for chain_id in group.chain_ids:
            self.scheduler.mempools[chain_id].kick()

    # ------------------------------------------------------------------
    # Verification and reporting
    # ------------------------------------------------------------------
    def _verify_replica(self, replica: Replica, context: str) -> bool:
        """Digest-compare a replica against its authoritative chains."""
        ok = True
        for chain_id in self.groups[replica.shard].chain_ids:
            self.counters["hash_checks"] += 1
            expected = self.scheduler.chains[chain_id].state_hash()
            actual = digest_state(replica.image_of(chain_id))
            if actual != expected:
                ok = False
                self.counters["hash_mismatches"] += 1
                self.violations.append(
                    f"replication: {replica.name} diverges from {chain_id} "
                    f"({context}): {actual.hex()[:16]} != {expected.hex()[:16]}"
                )
        return ok

    def check_invariants(self, strict: bool = False) -> list[str]:
        """Replication invariant sweep.

        Accumulated recovery-time mismatches plus a live sweep: every
        *caught-up* live replica must digest-match its chains.  With
        ``strict`` (after :meth:`finish`), every live replica must be
        caught up and match — lag is only legitimate mid-run, while
        shipments are in flight.
        """
        found = list(self.violations)
        for group in self.groups.values():
            for replica in group.alive_replicas():
                caught_up = all(
                    replica.applied.get(chain_id, 0) == len(group.logs[chain_id])
                    for chain_id in group.chain_ids
                )
                if not caught_up:
                    if strict:
                        found.append(
                            f"replication: {replica.name} lagging after "
                            "quiescence"
                        )
                    continue
                for chain_id in group.chain_ids:
                    expected = self.scheduler.chains[chain_id].state_hash()
                    actual = digest_state(replica.image_of(chain_id))
                    if actual != expected:
                        found.append(
                            f"replication: {replica.name} diverges from "
                            f"{chain_id}: {actual.hex()[:16]} != "
                            f"{expected.hex()[:16]}"
                        )
        return found

    def finish(self, end_time: float) -> None:
        """Close downtime windows and run final anti-entropy.

        Every live replica replays whatever log suffix it is still
        missing (shipments dropped by message faults included), so the
        post-run invariant sweep can demand byte-identity.
        """
        for group in self.groups.values():
            if group.down_since is not None:
                group.downtime += max(0.0, end_time - group.down_since)
                group.down_since = None
            for replica in group.alive_replicas():
                self._catch_up(replica)

    def availability(self, end_time: float) -> float:
        """Fraction of shard-time with a live leader sealing blocks."""
        if end_time <= 0 or not self.groups:
            return 1.0
        total_down = sum(group.downtime for group in self.groups.values())
        return max(0.0, 1.0 - total_down / (end_time * len(self.groups)))

    def stats(self) -> dict[str, float]:
        """The layer's counters (deterministic simulation quantities)."""
        stats = dict(self.counters)
        stats["replication_factor"] = self.factor
        return stats
