"""The market's commit log: one decision per deal, first one wins.

The per-deal CBC (:mod:`repro.consensus.bft`) gives each deal its own
certified log.  The market collapses that to a single
:class:`MarketCommitLog` contract on the coordinator chain: deals are
registered with their plist, parties vote commit, and the deal is
*decided* exactly once — either the block that carries the last missing
vote (commit) or the block that carries an abort mark (timeout or
escrow conflict), whichever executes first.  Block order on the
coordinator chain is the tie-breaker, which is what makes concurrent
conflict resolution deterministic: a vote landing after an abort mark
reverts, an abort mark landing after the deciding vote reverts.

The scheduler watches ``DealDecided`` events and fans the outcome out
to every involved chain's :class:`~repro.market.book.MarketEscrowBook`
as commit/abort claims.
"""

from __future__ import annotations

from repro.chain.contracts import CallContext, Contract
from repro.crypto.keys import Address

PENDING = "pending"
COMMITTED = "committed"
ABORTED = "aborted"


class MarketCommitLog(Contract):
    """Registration, votes, and the single decision per deal."""

    EXPORTS = ("register", "vote", "mark_abort")

    def __init__(self, name: str, coordinator: Address):
        super().__init__(name)
        self.coordinator = coordinator
        self.plists = self.storage("plists")
        self.status = self.storage("status")
        self.voted = self.storage("voted")
        self.vote_counts = self.storage("voteCounts")

    def register(self, ctx: CallContext, deal_id: bytes, parties: tuple[Address, ...]) -> bool:
        """Enter a deal into the log (coordinator, after order checks)."""
        ctx.require(ctx.sender == self.coordinator, "only the coordinator registers")
        ctx.require(len(parties) > 0, "empty plist")
        ctx.require(deal_id not in self.status, "deal already registered")
        self.plists[deal_id] = tuple(parties)
        self.status[deal_id] = PENDING
        self.vote_counts[deal_id] = 0
        ctx.emit(self, "DealRegistered", deal_id=deal_id)
        return True

    def vote(self, ctx: CallContext, deal_id: bytes) -> bool:
        """Record the caller's commit vote; the last one decides."""
        status = self.status.get(deal_id)
        ctx.require(status is not None, "deal not registered")
        ctx.require(status == PENDING, "deal already decided")
        plist = self.plists[deal_id]
        ctx.require(ctx.sender in plist, "voter not in plist")
        ctx.require(not self.voted.get((deal_id, ctx.sender), False), "duplicate vote")
        self.voted[(deal_id, ctx.sender)] = True
        count = self.vote_counts[deal_id] + 1
        self.vote_counts[deal_id] = count
        ctx.emit(self, "VoteRecorded", deal_id=deal_id, voter=ctx.sender)
        if count == len(plist):
            self.status[deal_id] = COMMITTED
            ctx.emit(self, "DealDecided", deal_id=deal_id, outcome="commit")
        return True

    def mark_abort(self, ctx: CallContext, deal_id: bytes) -> bool:
        """Decide abort (timeout or escrow conflict) unless already committed."""
        status = self.status.get(deal_id)
        ctx.require(status is not None, "deal not registered")
        ctx.require(status == PENDING, "deal already decided")
        ctx.require(
            ctx.sender == self.coordinator or ctx.sender in self.plists[deal_id],
            "only the coordinator or a party may abort",
        )
        self.status[deal_id] = ABORTED
        ctx.emit(self, "DealDecided", deal_id=deal_id, outcome="abort")
        return True

    # ------------------------------------------------------------------
    # Off-chain inspection
    # ------------------------------------------------------------------
    def peek_status(self, deal_id: bytes) -> str | None:
        """The deal's decision state (unmetered)."""
        return self.status.peek(deal_id)
