"""The market's commit log: one decision per deal, first one wins.

The per-deal CBC (:mod:`repro.consensus.bft`) gives each deal its own
certified log.  The market collapses that to a single
:class:`MarketCommitLog` contract per **shard**: deals are registered
with their plist, parties vote commit, and the deal is *decided*
exactly once — either the block that carries the last missing vote
(commit) or the block that carries an abort mark (timeout or escrow
conflict), whichever executes first.  Block order on the log's home
chain is the tie-breaker, which is what makes concurrent conflict
resolution deterministic: a vote landing after an abort mark reverts,
an abort mark landing after the deciding vote reverts.

Sharding (PR 5) splits the market across ``shards`` coordinator
chains, each carrying one commit log.  The cross-shard commit path
rests on two rules:

* **Routing is enforced on-chain.**  Every deal has exactly one home
  shard — :func:`~repro.market.order.shard_of_deal` of its content
  hash — and ``register`` *reverts* on any other shard's log.  Even a
  buggy or adversarial router cannot get the same deal registered
  (let alone decided) on two coordinators, so exactly-once needs no
  cross-shard coordination at decision time.
* **First-committed-wins resolves across books.**  A deal's escrows
  may live on books owned by *other* shards; conflicts over an escrow
  (a double-sell, an over-draw) are resolved by block order on the
  book's own chain, and each losing deal aborts through its *own*
  home log.  The two shards never have to agree on an order of
  events — the asset chain's block order is the shared arbiter.

The scheduler watches ``DealDecided`` events and fans the outcome out
to every involved chain's :class:`~repro.market.book.MarketEscrowBook`
as commit/abort claims, exactly as in the single-coordinator market.
"""

from __future__ import annotations

from repro.chain.contracts import CallContext, Contract
from repro.crypto.keys import Address
from repro.market.order import shard_of_deal

PENDING = "pending"
COMMITTED = "committed"
ABORTED = "aborted"


class MarketCommitLog(Contract):
    """Registration, votes, and the single decision per deal.

    ``shard``/``shards`` pin the log to its position in a sharded
    market; the defaults (0 of 1) are the unsharded layout, where the
    routing check degenerates to always-true and the contract behaves
    byte-for-byte like the pre-sharding log.
    """

    EXPORTS = ("register", "vote", "mark_abort")

    def __init__(self, name: str, coordinator: Address,
                 shard: int = 0, shards: int = 1):
        super().__init__(name)
        self.coordinator = coordinator
        self.shard = shard
        self.shards = shards
        self.plists = self.storage("plists")
        self.status = self.storage("status")
        self.voted = self.storage("voted")
        self.vote_counts = self.storage("voteCounts")

    def register(self, ctx: CallContext, deal_id: bytes, parties: tuple[Address, ...]) -> bool:
        """Enter a deal into the log (coordinator, after order checks)."""
        ctx.require(ctx.sender == self.coordinator, "only the coordinator registers")
        ctx.require(len(parties) > 0, "empty plist")
        ctx.require(
            shard_of_deal(deal_id, self.shards) == self.shard,
            "deal routed to the wrong shard",
        )
        ctx.require(deal_id not in self.status, "deal already registered")
        self.plists[deal_id] = tuple(parties)
        self.status[deal_id] = PENDING
        self.vote_counts[deal_id] = 0
        ctx.emit(self, "DealRegistered", deal_id=deal_id)
        return True

    def vote(self, ctx: CallContext, deal_id: bytes) -> bool:
        """Record the caller's commit vote; the last one decides."""
        status = self.status.get(deal_id)
        ctx.require(status is not None, "deal not registered")
        ctx.require(status == PENDING, "deal already decided")
        plist = self.plists[deal_id]
        ctx.require(ctx.sender in plist, "voter not in plist")
        ctx.require(not self.voted.get((deal_id, ctx.sender), False), "duplicate vote")
        self.voted[(deal_id, ctx.sender)] = True
        count = self.vote_counts[deal_id] + 1
        self.vote_counts[deal_id] = count
        ctx.emit(self, "VoteRecorded", deal_id=deal_id, voter=ctx.sender)
        if count == len(plist):
            self.status[deal_id] = COMMITTED
            ctx.emit(self, "DealDecided", deal_id=deal_id, outcome="commit")
        return True

    def mark_abort(self, ctx: CallContext, deal_id: bytes) -> bool:
        """Decide abort (timeout or escrow conflict) unless already committed."""
        status = self.status.get(deal_id)
        ctx.require(status is not None, "deal not registered")
        ctx.require(status == PENDING, "deal already decided")
        ctx.require(
            ctx.sender == self.coordinator or ctx.sender in self.plists[deal_id],
            "only the coordinator or a party may abort",
        )
        self.status[deal_id] = ABORTED
        ctx.emit(self, "DealDecided", deal_id=deal_id, outcome="abort")
        return True

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Copy the log's full state for replication/recovery."""
        return self.snapshot_state()

    def restore(self, state: dict[str, dict]) -> None:
        """Reset the log to a :meth:`snapshot` (operator-level)."""
        self.restore_state(state)

    # ------------------------------------------------------------------
    # Off-chain inspection
    # ------------------------------------------------------------------
    def peek_status(self, deal_id: bytes) -> str | None:
        """The deal's decision state (unmetered)."""
        return self.status.peek(deal_id)

    def peek_registered(self) -> dict[bytes, str]:
        """Every registered deal's status (unmetered; for invariants).

        The cross-shard exactly-once invariant sweeps every shard's
        log through this: the per-log maps must be disjoint, and every
        entry must sit on the deal's home shard.
        """
        return {deal_id: status for deal_id, status in self.status.items()}
