"""Block-space economics: fee bids, sealing policies, base-fee control.

The ROADMAP's fee-market axis: real traffic is bursty, skewed, and
adversarially priced, yet a FIFO mempool sells every block slot at the
same (zero) price.  This module prices block space:

* a :class:`FeeLedger` records every admitted deal's co-signed
  ``fee_bid`` (see :func:`repro.market.order.order_message` — the bid
  is folded into the signed manifest, outside the deal id) plus the
  fee accounting of the run: what sealed deals actually paid and which
  deals were priced out of the market entirely;
* :class:`FirstPricePolicy` seals highest-bid-first within the block
  cap — a pay-as-bid priority auction;
* :class:`BaseFeePolicy` is the EIP-1559-style variant: each chain
  carries a *base fee* that rises when blocks run fuller than the
  target occupancy and decays when they run emptier; a step whose deal
  bids under the current base fee goes back to the pending queue until
  the base fee falls to meet it.  A bid that can *never* meet the base
  fee (it is below the base-fee floor, which the decay never crosses)
  is evicted and the deal is *fee-priced-out* — a measured market
  outcome (like §5's sore losers), never a safety violation: the deal
  resolves through the ordinary abort machinery and every escrow
  refunds.

Fees are priority units in the paper's §9 cost-model sense (see
:func:`repro.core.incentives.deal_fee_budget`), not on-chain token
transfers: charging them moves no ledger balance, so every
conservation invariant is policy-independent by construction — which
is exactly the property the E19 gate holds the market to.

**Settlement exemption.**  Abort marks, claims, refunds and other
settlement-plane steps (:data:`EXEMPT_PHASES`) always seal ahead of
fee-priced traffic.  Without the exemption a priced-out deal could
never terminate (its abort would be priced out too); with it, fee
pressure can only cost a deal its *commit*, never its refund — the
"no safety violation under any fee schedule" half of the gate.

The default policy is FIFO and is structurally absent:
:func:`make_seal_policy` returns ``None`` for it, the mempool keeps
its historical drain, and report bytes are identical to a build that
never heard of fees (CI ``cmp``'s exactly that).
"""

from __future__ import annotations

from repro.errors import MarketError

#: Sealing policy names accepted by ``MarketConfig.seal_policy``.
SEAL_POLICIES = ("fifo", "first_price", "base_fee")

#: Settlement-plane transaction phases that are never fee-gated: the
#: machinery that terminates a deal (abort marks, decided-claims,
#: timelock refunds/settles, stale-proof presentations) must seal even
#: when the deal's own bid no longer clears the market, or fee
#: pressure could strand escrows.  Votes and escrow/transfer steps
#: stay gated — they are the traffic being priced.
EXEMPT_PHASES = frozenset({
    "market/abort",
    "market/commit-claim",
    "market/abort-claim",
    "market/refund",
    "market/settle",
    "market/stale-proof",
    "market/escrow-approve",
})


class FeeLedger:
    """Market-wide fee record: bids in, charges and evictions out.

    One per market run, shared by the coordinator (which posts each
    admitted order's bid) and every mempool's sealing policy (which
    looks bids up per step and records what sealing charged).  All
    counters are deterministic simulation quantities.
    """

    def __init__(self):
        self._bids: dict[bytes, int] = {}
        self.charged: dict[bytes, int] = {}
        self.priced_out_deals: set[bytes] = set()
        self.accrued = 0

    def post(self, deal_id: bytes, fee_bid: int) -> None:
        """Record one admitted deal's co-signed fee bid."""
        if fee_bid > 0:
            self._bids[deal_id] = fee_bid

    def bid(self, deal_id: bytes) -> int:
        """The deal's fee bid (0 when it never bid)."""
        return self._bids.get(deal_id, 0)

    def charge(self, deal_id: bytes, amount: int) -> None:
        """Account ``amount`` fee units against a sealed step's deal."""
        if amount > 0:
            self.charged[deal_id] = self.charged.get(deal_id, 0) + amount
            self.accrued += amount

    def price_out(self, deal_id: bytes) -> None:
        """Mark a deal fee-priced-out (its step was evicted)."""
        self.priced_out_deals.add(deal_id)

    def priced_out(self, deal_id: bytes) -> bool:
        """Whether the deal lost a step to fee pressure."""
        return deal_id in self.priced_out_deals


class SealPolicy:
    """How one chain's mempool fills the next block's slots.

    ``select`` consumes the pending queue (arrival order, each step
    stamped with its submission sequence by the mempool) and splits it
    into the sealed ``batch`` (at most ``cap`` steps), the ``leftover``
    that stays pending, and the ``evicted`` steps that will *never*
    seal under this policy.  Implementations must be deterministic
    pure functions of their inputs plus policy-local state — no
    randomness, no wall clock — so reports stay byte-identical across
    job counts and backends.
    """

    name = "?"

    def select(self, pending: list, cap: int) -> tuple[list, list, list]:
        raise NotImplementedError

    def exempt(self, step) -> bool:
        """Settlement-plane steps always seal ahead of priced traffic."""
        return step.tx.phase in EXEMPT_PHASES


class FirstPricePolicy(SealPolicy):
    """Pay-as-bid priority: highest fee first within the block cap.

    Exempt settlement steps seal first (arrival order), then deal
    traffic by descending bid; ties break by submission sequence, so
    equal bids degrade to exact FIFO.  Sealed deal steps are charged
    their own bid.  Nothing is ever evicted — an under-bidder waits
    for a slack block, and since the backlog drains ``cap`` steps per
    seal it always gets one eventually.
    """

    name = "first_price"

    def __init__(self, fees: FeeLedger):
        self.fees = fees

    def select(self, pending: list, cap: int) -> tuple[list, list, list]:
        ranked = sorted(
            pending,
            key=lambda step: (
                0 if self.exempt(step) else 1,
                -self.fees.bid(step.deal_id),
                step.seq,
            ),
        )
        batch, spill = ranked[:cap], ranked[cap:]
        for step in batch:
            if not self.exempt(step):
                self.fees.charge(step.deal_id, self.fees.bid(step.deal_id))
        spill.sort(key=lambda step: step.seq)  # pending stays arrival-ordered
        return batch, spill, []


class BaseFeePolicy(SealPolicy):
    """EIP-1559-style congestion control, one instance per chain.

    The chain's base fee multiplies by ``1 + adjust * (fullness -
    target) / target`` after every seal: full blocks raise the price
    of the next one, empty blocks decay it (geometrically, by at most
    ``adjust`` per block) down to ``floor``.  A step seals only when
    its deal's bid meets the *current* base fee — under-bidders go
    back to the pending queue and ride the decay; sealed deal steps
    are charged the base fee they sealed at (the protocol price, not
    their bid).  A bid below ``floor`` can never become eligible, so
    once the base fee sits at the floor such steps are evicted and
    their deals priced out — otherwise the mempool would reschedule
    seals forever and the run could not quiesce.
    """

    name = "base_fee"

    def __init__(
        self,
        fees: FeeLedger,
        initial: float = 1.0,
        floor: float = 1.0,
        adjust: float = 0.125,
        target_fullness: float = 0.5,
    ):
        if floor <= 0 or initial < floor:
            raise MarketError("base fee needs initial >= floor > 0")
        if not 0.0 < target_fullness <= 1.0:
            raise MarketError("target fullness must be in (0, 1]")
        if not 0.0 < adjust < 1.0:
            raise MarketError("base-fee adjust rate must be in (0, 1)")
        self.fees = fees
        self.base_fee = float(initial)
        self.floor = float(floor)
        self.adjust = adjust
        self.target_fullness = target_fullness

    def _eligible(self, step) -> bool:
        return self.fees.bid(step.deal_id) >= self.base_fee

    def select(self, pending: list, cap: int) -> tuple[list, list, list]:
        eligible, waiting, evicted = [], [], []
        at_floor = self.base_fee <= self.floor
        for step in pending:
            if self.exempt(step) or self._eligible(step):
                eligible.append(step)
            elif at_floor and self.fees.bid(step.deal_id) < self.floor:
                # The decay has bottomed out and this bid still does
                # not clear it: it never will.  Fee-priced-out.
                evicted.append(step)
            else:
                waiting.append(step)
        eligible.sort(
            key=lambda step: (
                0 if self.exempt(step) else 1,
                -self.fees.bid(step.deal_id),
                step.seq,
            ),
        )
        batch, spill = eligible[:cap], eligible[cap:]
        price = int(self.base_fee) + (self.base_fee > int(self.base_fee))
        for step in batch:
            if not self.exempt(step):
                self.fees.charge(step.deal_id, price)
        for step in evicted:
            self.fees.price_out(step.deal_id)
        waiting.extend(spill)
        waiting.sort(key=lambda step: step.seq)
        # 1559 update: price the *next* block by this block's fullness.
        fullness = len(batch) / cap if cap else 0.0
        self.base_fee = max(
            self.floor,
            self.base_fee
            * (1.0 + self.adjust * (fullness - self.target_fullness)
               / self.target_fullness),
        )
        return batch, waiting, evicted


def make_seal_policy(config, fees: FeeLedger) -> SealPolicy | None:
    """Build one chain's sealing policy from a ``MarketConfig``.

    Returns ``None`` for ``"fifo"`` — the mempool then keeps its
    historical drain with zero fee machinery on the path, which is the
    byte-neutrality contract CI's fees-off ``cmp`` gate enforces.
    Every non-FIFO policy gets its own instance per call, so per-chain
    state (the base fee) never leaks across chains.
    """
    policy = getattr(config, "seal_policy", "fifo")
    if policy == "fifo":
        return None
    if policy == "first_price":
        return FirstPricePolicy(fees)
    if policy == "base_fee":
        return BaseFeePolicy(
            fees,
            initial=config.base_fee_initial,
            floor=config.base_fee_floor,
            adjust=config.base_fee_adjust,
            target_fullness=config.base_fee_target,
        )
    raise MarketError(
        f"unknown seal policy {policy!r} (expected one of {SEAL_POLICIES})"
    )
