"""Exception hierarchy for the cross-chain deals library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
Contract-level failures (the analogue of a Solidity ``require`` firing)
derive from :class:`ContractError`; they abort the enclosing transaction
and roll back its storage writes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class CryptoError(ReproError):
    """Key, signature, or proof material is malformed."""


class SignatureError(CryptoError):
    """A signature failed verification."""


class SimulationError(ReproError):
    """The discrete-event simulator was misused (e.g. scheduling in the past)."""


class NetworkError(ReproError):
    """A network model rejected a send (unknown endpoint, closed network)."""


class MarketError(ReproError):
    """The deal-market runtime rejected an order or was misconfigured."""


class ChainError(ReproError):
    """Base class for blockchain-substrate failures."""


class UnknownContractError(ChainError):
    """A transaction targeted a contract address that does not exist."""


class ContractError(ChainError):
    """A contract ``require`` failed; the transaction is reverted."""


class OutOfGasError(ContractError):
    """The transaction exhausted its gas allowance."""


class TokenError(ContractError):
    """A token operation violated balances or ownership."""


class ConsensusError(ReproError):
    """A consensus component (BFT validator set, PoW chain) was misused."""


class CertificateError(ConsensusError):
    """A quorum certificate or certificate chain failed validation."""


class DealError(ReproError):
    """Base class for deal-specification and protocol failures."""


class MalformedDealError(DealError):
    """A deal specification is structurally invalid (e.g. self-transfer)."""


class IllFormedDealError(DealError):
    """A deal's digraph is not strongly connected (free riders exist)."""


class ProtocolError(DealError):
    """A deal protocol component was driven outside its state machine."""


class ProofError(DealError):
    """A proof of commit/abort failed contract-side validation."""


class SwapError(ReproError):
    """A baseline swap protocol rejected its input (e.g. inexpressible deal)."""
