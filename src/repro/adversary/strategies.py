"""Party-level deviation strategies.

Each strategy subclasses :class:`~repro.core.parties.CompliantParty`
and overrides the smallest possible hook, so the deviation is precise
and the rest of the behaviour stays protocol-conformant.  The safety
gauntlet (experiment E7) crosses these with random deals and both
protocols and asserts Property 1 for the remaining compliant parties.
"""

from __future__ import annotations

from repro.core.deal import Asset, TransferStep
from repro.core.parties import CompliantParty
from repro.crypto.keys import Address


class WalkAwayParty(CompliantParty):
    """Never escrows anything: joins the deal, then disappears.

    The deal cannot complete; compliant parties must get refunds.
    """

    def decide_deposit(self, asset: Asset) -> bool:
        return False


class NoTransferParty(CompliantParty):
    """Escrows, but never performs its tentative transfers.

    Validation can never succeed for anyone, so the deal must abort
    (timeout / abort vote) and every escrow must refund.
    """

    def decide_transfer(self, step: TransferStep) -> bool:
        return False


class NoVoteParty(CompliantParty):
    """Escrows and transfers, but never votes to commit.

    The classic 'griefing' deviation: the deal is fully set up and
    then starved of one vote.  Timelock contracts must time out; CBC
    parties must eventually vote abort.
    """

    def decide_vote(self) -> bool:
        return False


class NoForwardParty(CompliantParty):
    """Votes, but never forwards other parties' votes (timelock).

    Tests that forwarding by *other* motivated parties (or direct
    voting) still completes deals, and that safety holds when it
    cannot.
    """

    def decide_forward(self, voter: Address, to_asset_id: str) -> bool:
        return False


class UnsatisfiedParty(CompliantParty):
    """Always fails validation (claims its incoming assets are wrong).

    A CBC party votes abort; a timelock party simply never votes.
    Either way the deal must abort with refunds.
    """

    def decide_validate(self) -> bool:
        return False


class CrashAfterEscrowParty(CompliantParty):
    """Goes silent a fixed delay after the run starts.

    ``crash_delay`` defaults to just after the escrow phase, the most
    damaging moment: its assets are locked but it will neither
    transfer nor vote.
    """

    def __init__(self, keypair, label, crash_delay: float = 5.0):
        super().__init__(keypair, label)
        self.crash_delay = crash_delay
        self._crashed = False

    def begin(self) -> None:
        super().begin()
        self.schedule(self.crash_delay, self._crash, "crash")

    def _crash(self) -> None:
        self._crashed = True

    def is_active(self) -> bool:
        return not self._crashed


class LateVoterParty(CompliantParty):
    """Delays its commit vote beyond every path deadline (timelock).

    The vote arrives after ``t0 + N·Δ`` so contracts must reject it
    and refund; nobody may lose assets to a late vote.
    """

    def _cast_votes(self) -> None:
        deadline = self.config.t0 + (len(self.spec.parties) + 1) * self.config.delta
        delay = max(0.0, deadline - self.env.simulator.now)
        self.schedule(delay, super()._cast_votes, "late-vote")


class ImmediateRescinderParty(CompliantParty):
    """CBC deviation: votes commit and then abort immediately.

    A compliant party must wait at least Δ before rescinding (§6);
    this one does not.  The deal may commit or abort depending on CBC
    ordering, but it must do so *uniformly* and safely.
    """

    def _vote_commit_cbc(self) -> None:
        super()._vote_commit_cbc()
        self._vote_abort_cbc()


class ShortChangeParty(CompliantParty):
    """Performs its transfers, but pays less than the deal specifies.

    Every fungible step it gives is cut in half (rounded down, at
    least 1 short).  Counterparties' validation must fail, so the deal
    aborts and refunds.
    """

    def _submit_enabled_steps(self) -> None:
        # Re-implement the loop with doctored amounts.
        for index, step in self.my_steps():
            if index in self._submitted_steps:
                continue
            if not self._step_enabled(step):
                continue
            asset = self.spec.asset(step.asset_id)
            self._submitted_steps.add(index)
            if asset.fungible:
                doctored = max(0, min(step.amount - 1, step.amount // 2))
                if doctored == 0:
                    continue
                self.send_tx(
                    asset.chain_id,
                    self.spec.escrow_contract_name(step.asset_id),
                    "transfer",
                    phase="transfer",
                    to=step.receiver,
                    amount=doctored,
                    token_ids=(),
                )
            else:
                # Ship only the first token of a multi-token step.
                self.send_tx(
                    asset.chain_id,
                    self.spec.escrow_contract_name(step.asset_id),
                    "transfer",
                    phase="transfer",
                    to=step.receiver,
                    amount=0,
                    token_ids=step.token_ids[:1],
                )


class DoubleSpendAttemptParty(CompliantParty):
    """Tries to spend the same tentative balance twice.

    After each legitimate transfer it submits a duplicate; the escrow
    contract must reject the second (its C-map balance is spent).
    Escrow is the concurrency control of adversarial commerce (§10).
    """

    def _submit_enabled_steps(self) -> None:
        before = set(self._submitted_steps)
        super()._submit_enabled_steps()
        for index in self._submitted_steps - before:
            step = self.spec.steps[index]
            asset = self.spec.asset(step.asset_id)
            self.send_tx(
                asset.chain_id,
                self.spec.escrow_contract_name(step.asset_id),
                "transfer",
                phase="transfer",
                to=step.receiver,
                amount=step.amount,
                token_ids=step.token_ids,
            )


#: The strategy grid used by the E7 safety gauntlet.  Each entry is a
#: (name, factory) pair; factories take (keypair, label).
ALL_STRATEGIES: list[tuple[str, type[CompliantParty]]] = [
    ("compliant", CompliantParty),
    ("walk-away", WalkAwayParty),
    ("no-transfer", NoTransferParty),
    ("no-vote", NoVoteParty),
    ("no-forward", NoForwardParty),
    ("unsatisfied", UnsatisfiedParty),
    ("crash-after-escrow", CrashAfterEscrowParty),
    ("late-voter", LateVoterParty),
    ("immediate-rescinder", ImmediateRescinderParty),
    ("short-change", ShortChangeParty),
    ("double-spend", DoubleSpendAttemptParty),
]
