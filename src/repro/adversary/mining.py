"""The §6.2 private-mining attack on a proof-of-work CBC.

Scenario (paper, verbatim in spirit): as soon as the deal starts,
Alice privately mines a block containing her *abort* vote while
publicly voting *commit*.  If she can extend her private fork to the
required confirmation depth before the deal's window closes, she
presents:

* the legitimate public proof of commit to the contracts holding her
  *incoming* assets (she gets paid), and
* the fake private proof of abort to the contracts holding her
  *outgoing* assets (she gets refunded too).

The attack succeeds exactly when the private fork reaches
``confirmations + 1`` blocks before the honest chain finishes the
deal's window; both "proofs" verify, because a passive contract
cannot judge canonicality.  A BFT CBC is immune: certificates are
final and an attacker without a validator quorum cannot forge one.

:func:`attack_success_rate` estimates the success probability for a
grid of attacker hash powers and confirmation depths — benchmark E8's
series.  The analytic comparison curve is the classic race bound
``(alpha / (1 - alpha)) ** (c + 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.bft import DealStatus
from repro.consensus.pow import MiningRace, PowChain
from repro.core.proofs import PowVoteProof, encode_pow_vote
from repro.crypto.keys import Address
from repro.sim.rng import DeterministicRng


@dataclass
class AttackOutcome:
    """The result of one attack attempt."""

    succeeded: bool
    fake_proof: PowVoteProof | None
    honest_proof: PowVoteProof | None
    attacker_blocks: int
    honest_blocks: int


@dataclass
class PrivateMiningAttack:
    """One concrete attack run against a PoW CBC.

    ``confirmations`` is the proof depth the escrow contracts demand.
    The race is symmetric in that depth: the attacker needs her abort
    block plus ``confirmations`` more on the private fork, while the
    victims need ``confirmations`` blocks past the all-commit block —
    at which point they present the honest commit proof and settle the
    contested escrows, closing the attack window.  ``grace_blocks``
    models the victims' reaction delay in blocks (they do not claim in
    zero time).
    """

    deal_id: bytes
    plist: tuple[Address, ...]
    attacker: Address
    alpha: float
    confirmations: int
    grace_blocks: int = 1
    seed: int = 0

    def run(self) -> AttackOutcome:
        """Mine out the race and build both proofs if the attack wins."""
        rng = DeterministicRng(f"mining/{self.seed}")
        race = MiningRace(alpha=self.alpha, rng=rng)
        public = PowChain("public")
        # The public chain records everyone's commit votes.
        commit_entries = tuple(
            encode_pow_vote(self.deal_id, "commit", party.value) for party in self.plist
        )
        public.mine(commit_entries, miner="honest")
        # The attacker forks *before* the commit block and buries an
        # abort vote there.
        private = PowChain.forked_from(public, height=0)
        abort_entry = encode_pow_vote(self.deal_id, "abort", self.attacker.value)
        private.mine((abort_entry,), miner="attacker")

        honest_blocks = 0
        attacker_blocks = 1  # the abort block itself was attacker work
        attacker_target = self.confirmations + 1
        honest_target = self.confirmations + self.grace_blocks
        # Race: the attacker needs her abort block + c confirmations
        # before the honest chain finishes c confirmations (plus the
        # victims' reaction grace) and the contested escrows settle.
        while honest_blocks < honest_target and attacker_blocks < attacker_target:
            if race.next_winner() == "attacker":
                private.mine((), miner="attacker")
                attacker_blocks += 1
            else:
                public.mine((), miner="honest")
                honest_blocks += 1

        commit_entry = commit_entries[0]
        honest_proof = None
        raw_honest = public.proof_for(commit_entry)
        if raw_honest is not None:
            honest_proof = PowVoteProof(proof=raw_honest, claimed_status=DealStatus.COMMITTED)
        succeeded = attacker_blocks >= attacker_target
        fake_proof = None
        if succeeded:
            raw_fake = private.proof_for(abort_entry)
            fake_proof = PowVoteProof(proof=raw_fake, claimed_status=DealStatus.ABORTED)
        return AttackOutcome(
            succeeded=succeeded,
            fake_proof=fake_proof,
            honest_proof=honest_proof,
            attacker_blocks=attacker_blocks,
            honest_blocks=honest_blocks,
        )


def attack_success_rate(
    deal_id: bytes,
    plist: tuple[Address, ...],
    attacker: Address,
    alpha: float,
    confirmations: int,
    grace_blocks: int = 1,
    trials: int = 200,
    seed: int = 0,
) -> float:
    """Empirical success probability over ``trials`` seeded attempts."""
    wins = 0
    for trial in range(trials):
        attack = PrivateMiningAttack(
            deal_id=deal_id,
            plist=plist,
            attacker=attacker,
            alpha=alpha,
            confirmations=confirmations,
            grace_blocks=grace_blocks,
            seed=seed * 100_003 + trial,
        )
        if attack.run().succeeded:
            wins += 1
    return wins / trials


class PowFakeProofParty:
    """A deviating party for end-to-end CBC_POW runs (§6.2).

    Behaves compliantly until the deal commits on the PoW log, then
    plays Alice's double-game: claims its *incoming* assets with the
    honest commit proof while presenting a privately mined fake abort
    proof to the escrows holding its *outgoing* assets.  The private
    fork is assumed won (the race odds are what
    :func:`attack_success_rate` measures); this class shows the
    on-chain consequences when it is.

    Implemented as a mixin-style factory to avoid import cycles:
    ``PowFakeProofParty.wrap(CompliantParty)`` returns the subclass.
    """

    @staticmethod
    def wrap(base):
        from repro.consensus.bft import DealStatus as _DealStatus
        from repro.consensus.pow import PowChain as _PowChain

        class _FakeProofParty(base):
            def _try_settle_cbc(self):
                log = self.env.pow_log
                if log is None:
                    return super()._try_settle_cbc()
                status = log.deal_status(self.spec.deal_id)
                if status is not _DealStatus.COMMITTED:
                    return super()._try_settle_cbc()
                depth = log.confirmations(self.spec.deal_id)
                if depth is None or depth < self.config.pow_confirmations:
                    return
                # Claim incoming honestly.
                for asset_id in self.incoming_asset_ids():
                    self._settle_asset(asset_id, "commit")
                # Refund outgoing with a fake proof from a private fork.
                fake = self._fake_abort_proof()
                for asset in self.my_assets():
                    if asset.asset_id in self._settle_submitted:
                        continue
                    escrow = self.env.escrows[asset.asset_id]
                    from repro.core.escrow import EscrowState as _EscrowState

                    if escrow.peek_state() is not _EscrowState.ACTIVE:
                        continue
                    self._settle_submitted.add(asset.asset_id)
                    self.send_tx(
                        asset.chain_id,
                        self.spec.escrow_contract_name(asset.asset_id),
                        "abort",
                        phase="abort",
                        proof=fake,
                    )

            def _fake_abort_proof(self):
                log = self.env.pow_log
                private = _PowChain.forked_from(log.chain, height=0)
                abort_entry = encode_pow_vote(
                    self.spec.deal_id, "abort", self.address.value
                )
                private.mine((abort_entry,), miner="attacker")
                for _ in range(self.config.pow_confirmations):
                    private.mine((), miner="attacker")
                raw = private.proof_for(abort_entry)
                return PowVoteProof(proof=raw, claimed_status=DealStatus.ABORTED)

        _FakeProofParty.__name__ = f"PowFakeProof{base.__name__}"
        return _FakeProofParty


def analytic_race_bound(alpha: float, confirmations: int) -> float:
    """The classic catch-up curve ``(alpha/(1-alpha))^(c+1)``.

    A qualitative reference (Nakamoto's double-spend analysis): the
    probability an ``alpha``-share attacker ever gets ``c+1`` blocks
    ahead of the honest chain.  Our finite-window race is not the same
    random variable, but both decay geometrically in ``c`` with a
    ratio that worsens as ``alpha`` grows — the shape E8 checks.
    """
    if alpha <= 0:
        return 0.0
    ratio = alpha / (1 - alpha)
    return min(1.0, ratio ** (confirmations + 1))
