"""Deviating parties and environment-level attacks.

The paper's model places **no bound** on how many parties deviate:
safety (Property 1) must hold for every compliant party regardless.
This package provides the deviations the paper names, plus a few the
protocols must obviously survive:

* :mod:`repro.adversary.strategies` — party-level deviations (refuse
  to escrow / transfer / vote / forward, crash, vote late, rescind
  immediately, attempt double-spends);
* :mod:`repro.adversary.mining` — the §6.2 private-mining fake
  proof-of-abort attack against a proof-of-work CBC;
* :mod:`repro.adversary.dos` — the §5.3 offline-window scenario where
  a timelock participant loses assets by being driven offline;
* :mod:`repro.adversary.watchtower` — the Lightning-style mitigation
  the paper points to.
"""

from repro.adversary.strategies import (
    ALL_STRATEGIES,
    CrashAfterEscrowParty,
    DoubleSpendAttemptParty,
    ImmediateRescinderParty,
    LateVoterParty,
    NoForwardParty,
    NoTransferParty,
    NoVoteParty,
    ShortChangeParty,
    UnsatisfiedParty,
    WalkAwayParty,
)
from repro.adversary.mining import PrivateMiningAttack, attack_success_rate
from repro.adversary.dos import offline_window_scenario
from repro.adversary.watchtower import Watchtower

__all__ = [
    "ALL_STRATEGIES",
    "CrashAfterEscrowParty",
    "DoubleSpendAttemptParty",
    "ImmediateRescinderParty",
    "LateVoterParty",
    "NoForwardParty",
    "NoTransferParty",
    "NoVoteParty",
    "PrivateMiningAttack",
    "ShortChangeParty",
    "UnsatisfiedParty",
    "WalkAwayParty",
    "Watchtower",
    "attack_success_rate",
    "offline_window_scenario",
]
