"""Watchtowers: third parties that act for offline clients (§5.3).

The paper points to the Lightning network's watchtowers as the
established answer to timelock offline windows.  A watchtower here is
a separately connected actor that a client *pre-authorizes* (in
Lightning: with pre-signed transactions; here: with a signing
delegation limited to vote forwarding) to do the time-critical part
of the client's protocol while the client is unreachable:

* it watches the client's *outgoing* assets' contracts for newly
  accepted votes, and
* forwards them (path-extended with the client's signature) to the
  client's *incoming* assets' contracts before the path deadline.

The watchtower has its own network endpoint, so a DoS window aimed at
the client does not silence it.
"""

from __future__ import annotations

from repro.chain.tx import Transaction
from repro.core.config import ProtocolConfig
from repro.core.deal import DealSpec
from repro.core.parties import CompliantParty
from repro.crypto.keys import Address
from repro.crypto.pathsig import PathSignature, extend_path_signature


class Watchtower:
    """Forwards timelock commit votes on behalf of one client party."""

    def __init__(self, client: CompliantParty):
        self.client = client
        self.env = None
        self.spec: DealSpec | None = None
        self.config: ProtocolConfig | None = None
        self._forwarded: set[tuple[str, Address]] = set()
        self.forward_count = 0

    @property
    def endpoint(self) -> str:
        """The watchtower's own network endpoint."""
        return f"watchtower:{self.client.label}"

    def attach(self, env, spec: DealSpec, config: ProtocolConfig) -> None:
        """Register on the network and start watching the deal's chains."""
        self.env = env
        self.spec = spec
        self.config = config
        env.network.register(self.endpoint, self._on_message)
        for chain in env.chains.values():
            chain.subscribe(self._make_fanout(chain))

    def _make_fanout(self, chain):
        def fanout(ch, block) -> None:
            self.env.network.send(
                f"chain:{ch.chain_id}", self.endpoint, ("block", ch.chain_id, block)
            )

        return fanout

    def _on_message(self, message) -> None:
        payload = message.payload
        if payload[0] != "block":
            return
        _, chain_id, block = payload
        for receipt in block.receipts:
            for event in receipt.events:
                if event.name == "VoteAccepted":
                    self._maybe_forward(event.contract, event.fields["voter"], event.fields["path"])

    def _maybe_forward(self, contract_name: str, voter: Address, path: PathSignature) -> None:
        client_address = self.client.address
        if voter == client_address:
            return
        watched = {
            self.spec.escrow_contract_name(asset_id)
            for asset_id in self._client_outgoing()
        }
        if contract_name not in watched:
            return
        extended = extend_path_signature(path, self.client.keypair)
        for asset_id in self._client_incoming():
            target = self.spec.escrow_contract_name(asset_id)
            key = (target, voter)
            if key in self._forwarded:
                continue
            escrow = self.env.escrows[asset_id]
            if voter in escrow.peek_voted():
                continue
            self._forwarded.add(key)
            self.forward_count += 1
            asset = self.spec.asset(asset_id)
            tx = Transaction(
                sender=client_address,
                contract=target,
                method="commit",
                args={"path": extended},
                phase="commit",
            )
            self.env.network.send(self.endpoint, f"chain:{asset.chain_id}", ("tx", tx))

    def _client_outgoing(self) -> list[str]:
        seen: list[str] = []
        for step in self.spec.steps:
            if step.giver == self.client.address and step.asset_id not in seen:
                seen.append(step.asset_id)
        return seen

    def _client_incoming(self) -> list[str]:
        seen: list[str] = []
        for step in self.spec.steps:
            if step.receiver == self.client.address and step.asset_id not in seen:
                seen.append(step.asset_id)
        return seen
