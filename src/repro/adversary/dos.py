"""The §5.3 offline-window attack on the timelock protocol.

"Any timelock-based commit protocol has a window during which parties
may lose their assets by going offline at the wrong time."  In the
ticket-broker deal: Bob votes only on the coin blockchain (his
incoming).  If Alice and Carol are driven offline right after casting
their own votes, nobody forwards Bob's vote to the ticket blockchain:

* the **coin** escrow collects all three votes (Bob forwards Alice's
  and Carol's) and releases — Bob is paid;
* the **ticket** escrow times out missing Bob's vote and refunds the
  tickets — to Bob.

Bob ends up with the tickets *and* the coins.  Technically no safety
violation: Alice and Carol deviated by failing to act in time — but
it is exactly the risk the paper says watchtowers exist to cover.
:func:`offline_window_scenario` builds this run; pass
``with_watchtowers=True`` to add :class:`~repro.adversary.watchtower.
Watchtower` coverage for the victims and watch the deal commit
instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.watchtower import Watchtower
from repro.core.config import ProtocolKind
from repro.core.executor import DealExecutor, DealResult, auto_config
from repro.core.parties import CompliantParty
from repro.sim.faults import FaultPlan, OfflineWindow
from repro.workloads.scenarios import ticket_broker_deal


@dataclass
class DosScenarioResult:
    """The outcome of one offline-window run."""

    result: DealResult
    victims: list[str]
    offline_from: float
    offline_until: float
    with_watchtowers: bool


def offline_window_scenario(
    offline_from: float = 5.0,
    offline_duration: float = 200.0,
    with_watchtowers: bool = False,
    seed: int = 0,
) -> DosScenarioResult:
    """Run the ticket-broker deal with Alice and Carol driven offline.

    ``offline_from`` should land just after the victims cast their own
    votes (≈ t = 5 with default timing) so those votes get out but
    Bob's vote is never forwarded to the ticket chain.
    """
    spec, keys = ticket_broker_deal(nonce=b"dos")
    parties = [CompliantParty(kp, label) for label, kp in keys.items()]
    config = auto_config(spec, ProtocolKind.TIMELOCK)
    victims = ["alice", "carol"]
    plan = FaultPlan()
    for victim in victims:
        plan.add(
            OfflineWindow(
                endpoint=f"party:{victim}",
                start=offline_from,
                end=offline_from + offline_duration,
            )
        )
    executor = DealExecutor(
        spec, parties, config, seed=seed, fault_plan=plan
    )
    if with_watchtowers:
        original_build = executor._build

        def build_with_watchtowers():
            env = original_build()
            for victim in victims:
                party = next(p for p in parties if p.label == victim)
                Watchtower(party).attach(env, spec, config)
            return env

        executor._build = build_with_watchtowers
    result = executor.run()
    return DosScenarioResult(
        result=result,
        victims=victims,
        offline_from=offline_from,
        offline_until=offline_from + offline_duration,
        with_watchtowers=with_watchtowers,
    )
