"""Outcome evaluation: the paper's safety and liveness properties.

Given a finished :class:`~repro.core.executor.DealResult` and the set
of *compliant* parties, this module checks:

* **Property 1 (safety)** — for every compliant party X: if any of
  X's outgoing assets was transferred, all of X's incoming assets were
  transferred.  (The paper's two bullets are contrapositives, so one
  check covers both.)  Evaluated on net on-chain holdings against the
  deal's projected commit state.
* **Property 2 (weak liveness)** — no compliant party's asset is
  still locked in an escrow at the end of the run.
* **Property 3 (strong liveness)** — when *every* party is compliant,
  all transfers happen (every escrow released and every party holds
  its projected commit holdings).
* **Uniformity** — the CBC protocol additionally guarantees the deal
  commits everywhere or aborts everywhere (§6.1); the timelock
  protocol does not (§9).

Assets still held by an *active* escrow at evaluation time are
attributed back to their depositors (the A-map): the contract
guarantees anyone can trigger the refund after the timeout, so those
units are recoverable, not lost — but they do flag a weak-liveness
failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.deal import DealSpec
from repro.core.escrow import EscrowState
from repro.core.executor import DealResult, Holdings
from repro.crypto.keys import Address


@dataclass(frozen=True)
class PartyVerdict:
    """Safety accounting for one party."""

    address: Address
    label: str
    compliant: bool
    relinquished_any: bool
    received_all: bool
    assets_stuck: bool

    @property
    def safety_ok(self) -> bool:
        """Property 1 for this party."""
        return not (self.relinquished_any and not self.received_all)


@dataclass
class OutcomeReport:
    """The full property evaluation of one run."""

    verdicts: dict = field(default_factory=dict)
    weak_liveness_ok: bool = True
    strong_liveness_ok: bool | None = None
    uniform_outcome: bool = True
    all_compliant: bool = True

    @property
    def safety_ok(self) -> bool:
        """Property 1 across all compliant parties."""
        return all(
            verdict.safety_ok for verdict in self.verdicts.values() if verdict.compliant
        )

    def violations(self) -> list[str]:
        """Human-readable list of property violations."""
        problems = []
        for verdict in self.verdicts.values():
            if verdict.compliant and not verdict.safety_ok:
                problems.append(f"safety violated for compliant party {verdict.label}")
        if not self.weak_liveness_ok:
            problems.append("weak liveness violated (compliant assets locked)")
        if self.strong_liveness_ok is False:
            problems.append("strong liveness violated (all compliant, transfers missing)")
        return problems


def expected_commit_holdings(spec: DealSpec, initial: Holdings) -> Holdings:
    """Project each party's holdings if the deal commits everywhere."""
    expected: Holdings = {
        key: dict(per_holder) for key, per_holder in initial.items()
    }
    projection = spec.final_commit_holdings()
    for asset in spec.assets:
        key = (asset.chain_id, asset.token)
        per_holder = expected[key]
        final_map = projection[asset.asset_id]
        if asset.fungible:
            per_holder[asset.owner] = per_holder.get(asset.owner, 0) - asset.amount
            for party, amount in final_map.items():
                if amount:
                    per_holder[party] = per_holder.get(party, 0) + amount
        else:
            per_holder[asset.owner] = frozenset(
                per_holder.get(asset.owner, frozenset()) - set(asset.token_ids)
            )
            for party, ids in final_map.items():
                if ids:
                    per_holder[party] = frozenset(
                        set(per_holder.get(party, frozenset())) | set(ids)
                    )
    return expected


def _effective_final(result: DealResult) -> Holdings:
    """Final holdings with active-escrow contents credited to depositors."""
    effective: Holdings = {
        key: dict(per_holder) for key, per_holder in result.final_holdings.items()
    }
    for asset_id, state in result.escrow_states.items():
        if state is not EscrowState.ACTIVE:
            continue
        escrow = result.env.escrows[asset_id]
        if not escrow.peek_deposited():
            continue
        asset = result.spec.asset(asset_id)
        key = (asset.chain_id, asset.token)
        per_holder = effective[key]
        if asset.fungible:
            per_holder[asset.owner] = per_holder.get(asset.owner, 0) + asset.amount
            per_holder[escrow.address] = 0
        else:
            per_holder[asset.owner] = frozenset(
                set(per_holder.get(asset.owner, frozenset())) | set(asset.token_ids)
            )
            per_holder[escrow.address] = frozenset()
    return effective


def evaluate_outcome(
    result: DealResult, compliant: set[Address] | None = None
) -> OutcomeReport:
    """Evaluate Properties 1-3 and uniformity over a finished run.

    ``compliant`` defaults to every party (the all-compliant case,
    where strong liveness must hold too).
    """
    spec = result.spec
    if compliant is None:
        compliant = set(spec.parties)
    report = OutcomeReport(all_compliant=compliant == set(spec.parties))

    expected = expected_commit_holdings(spec, result.initial_holdings)
    effective = _effective_final(result)

    # Weak liveness: any *deposited, still-active* escrow of a
    # compliant party's asset counts as locked value.
    stuck_owners: set[Address] = set()
    for asset_id, state in result.escrow_states.items():
        if state is EscrowState.ACTIVE and result.env.escrows[asset_id].peek_deposited():
            stuck_owners.add(spec.asset(asset_id).owner)
    report.weak_liveness_ok = not (stuck_owners & compliant)

    for party in spec.parties:
        relinquished = False
        received_all = True
        for key, initial_map in result.initial_holdings.items():
            init = initial_map.get(party, 0 if _is_fungible(initial_map) else frozenset())
            fin = effective[key].get(party, init.__class__())
            exp = expected[key].get(party, init.__class__())
            if isinstance(init, int):
                if fin < init:
                    relinquished = True
                if exp > init and fin < exp:
                    received_all = False
            else:
                if set(init) - set(fin):
                    relinquished = True
                gained = set(exp) - set(init)
                if gained and not gained <= set(fin):
                    received_all = False
        report.verdicts[party] = PartyVerdict(
            address=party,
            label=spec.label(party),
            compliant=party in compliant,
            relinquished_any=relinquished,
            received_all=received_all,
            assets_stuck=party in stuck_owners,
        )

    # Uniformity (the CBC guarantee).
    states = set(result.escrow_states.values())
    report.uniform_outcome = not (
        EscrowState.RELEASED in states and EscrowState.REFUNDED in states
    )

    # Strong liveness is only defined for all-compliant runs.
    if report.all_compliant:
        committed = result.all_committed()
        holdings_match = True
        for key, expected_map in expected.items():
            for party in spec.parties:
                exp = expected_map.get(party)
                if exp is None:
                    continue
                fin = result.final_holdings[key].get(party)
                if isinstance(exp, int):
                    if (fin or 0) != exp:
                        holdings_match = False
                else:
                    if set(fin or frozenset()) != set(exp):
                        holdings_match = False
        report.strong_liveness_ok = committed and holdings_match
    else:
        report.strong_liveness_ok = None
    return report


def _is_fungible(per_holder: dict) -> bool:
    for value in per_holder.values():
        return isinstance(value, int)
    return True
