"""The CBC commit protocol's escrow contract (paper §6, Figure 6).

Unlike the timelock contract, this contract records no votes: parties
vote to commit or abort *on the certified blockchain*, and whoever
wants the escrow resolved presents a **proof** extracted from the CBC:

* ``commit(proof)`` — release the escrow if the proof shows every
  party voted commit before any abort (decisive commit);
* ``abort(proof)`` — refund if the proof shows a decisive abort.

The contract is told the CBC's *initial* validator public keys when it
is created (the paper passes them "in place of the ellipses" in the
escrow call); proofs carry handover certificates if the validator set
has since been reconfigured.

A PoW-flavoured subclass accepts confirmation-depth proofs instead —
it exists to reproduce the §6.2 fake-proof attack, not to be safe.
"""

from __future__ import annotations

from repro.chain.contracts import CallContext
from repro.consensus.bft import DealStatus
from repro.core.deal import Asset
from repro.core.escrow import EscrowManager, EscrowState
from repro.core.proofs import (
    BlockProof,
    PowVoteProof,
    StatusProof,
    verify_block_proof,
    verify_pow_proof,
    verify_status_proof,
)
from repro.crypto.keys import Address
from repro.crypto.schnorr import PublicKey


class CbcEscrow(EscrowManager):
    """Figure 6's ``CBCManager``: escrow resolved by CBC proofs."""

    EXPORTS = EscrowManager.EXPORTS + ("commit", "abort")

    def __init__(
        self,
        name: str,
        deal_id: bytes,
        plist: tuple[Address, ...],
        asset: Asset,
        start_hash: bytes,
        validator_keys: tuple[PublicKey, ...],
    ):
        super().__init__(name, deal_id, plist, asset)
        self.start_hash = start_hash
        self.validator_keys = tuple(validator_keys)

    def _verify(self, ctx: CallContext, proof) -> DealStatus | None:
        if isinstance(proof, StatusProof):
            return verify_status_proof(
                ctx, proof, self.validator_keys, self.deal_id, self.start_hash
            )
        if isinstance(proof, BlockProof):
            return verify_block_proof(
                ctx, proof, self.validator_keys, self.deal_id, self.start_hash, self.plist
            )
        return None

    def commit(self, ctx: CallContext, proof) -> bool:
        """Release the escrow on a valid proof of commit."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        status = self._verify(ctx, proof)
        ctx.require(status is DealStatus.COMMITTED, "invalid proof of commit")
        self._release(ctx)
        return True

    def abort(self, ctx: CallContext, proof) -> bool:
        """Refund the escrow on a valid proof of abort."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        status = self._verify(ctx, proof)
        ctx.require(status is DealStatus.ABORTED, "invalid proof of abort")
        self._refund(ctx)
        return True


class PowCbcEscrow(EscrowManager):
    """A CBC escrow trusting a proof-of-work CBC (deliberately unsafe).

    Accepts any internally consistent block suffix with at least
    ``min_confirmations`` blocks after the decisive vote — a passive
    contract cannot tell a private fork from the canonical chain,
    which is the vulnerability E8 measures.
    """

    EXPORTS = EscrowManager.EXPORTS + ("commit", "abort")

    def __init__(
        self,
        name: str,
        deal_id: bytes,
        plist: tuple[Address, ...],
        asset: Asset,
        min_confirmations: int,
    ):
        super().__init__(name, deal_id, plist, asset)
        self.min_confirmations = min_confirmations

    def commit(self, ctx: CallContext, proof: PowVoteProof) -> bool:
        """Release on a PoW proof of commit with enough confirmations."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        status = verify_pow_proof(
            ctx, proof, self.deal_id, self.plist, self.min_confirmations
        )
        ctx.require(status is DealStatus.COMMITTED, "invalid proof of commit")
        self._release(ctx)
        return True

    def abort(self, ctx: CallContext, proof: PowVoteProof) -> bool:
        """Refund on a PoW proof of abort with enough confirmations."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        status = verify_pow_proof(
            ctx, proof, self.deal_id, self.plist, self.min_confirmations
        )
        ctx.require(status is DealStatus.ABORTED, "invalid proof of abort")
        self._refund(ctx)
        return True
