"""The timelock commit protocol's escrow contract (paper §5, Figure 5).

Termination rules:

* ``commit(voter, path)`` — accept a commit vote carried by a path
  signature ``p`` iff it arrives before ``t0 + |p|·Δ`` (chain time),
  the voter is a plist member who has not voted here yet, the path has
  no duplicate signers, and every signature on the path verifies
  (``|p|`` signature verifications — the O(n²) per-contract worst case
  of §7.1).  When the contract has accepted a vote from *every* party,
  it releases the escrow in the same transaction.
* ``refund()`` — anyone may trigger the refund after the terminal
  timeout ``t0 + N·Δ`` if some vote is still missing; by then no
  missing vote can ever be accepted (a path signature has at most N
  distinct signers).

There is no abort vote: timeouts play that role (§5).
"""

from __future__ import annotations

from repro.chain.contracts import CallContext
from repro.core.deal import Asset
from repro.core.escrow import EscrowManager, EscrowState
from repro.crypto.keys import Address
from repro.crypto.pathsig import PathSignature, vote_message


class TimelockEscrow(EscrowManager):
    """Figure 5's ``TimelockManager``: escrow + path-signature voting."""

    EXPORTS = EscrowManager.EXPORTS + ("commit", "refund")

    def __init__(
        self,
        name: str,
        deal_id: bytes,
        plist: tuple[Address, ...],
        asset: Asset,
        t0: float,
        delta: float,
        batch_votes: bool = False,
    ):
        super().__init__(name, deal_id, plist, asset)
        self.t0 = t0
        self.delta = delta
        # §9 ablation: verify a vote's whole signature path in one
        # batched check instead of per-signature.
        self.batch_votes = batch_votes
        self.voted = self.storage("voted")

    # ------------------------------------------------------------------
    # Figure 5: commit
    # ------------------------------------------------------------------
    def commit(self, ctx: CallContext, path: PathSignature) -> bool:
        """Register a (possibly forwarded) commit vote."""
        voter = path.voter
        # Deadline depends on the forwarding path length (§5).
        ctx.require(
            ctx.now < self.t0 + path.path_length * self.delta,
            "vote arrived after its path deadline",
        )
        ctx.require(voter in self.plist, "voter not in plist")
        ctx.require(not self.voted.get(voter, False), "duplicate vote")
        ctx.require(not path.has_duplicate_signers(), "duplicate signers on path")
        for signer in path.signers:
            ctx.require(signer in self.plist, "path signer not in plist")
        # Replay the signature chain: |p| verifications at 3000 gas
        # each, or one batched check (§9 ablation) when enabled.
        message = vote_message(self.deal_id, voter, "commit")
        if self.batch_votes:
            items = []
            for signer, signature in zip(path.signers, path.signatures):
                items.append((signer, message, signature))
                message = signature.to_bytes()
            ctx.require(
                ctx.verify_signature_batch(items), "invalid signature on path"
            )
        else:
            for signer, signature in zip(path.signers, path.signatures):
                ctx.require(
                    ctx.verify_signature(signer, message, signature),
                    "invalid signature on path",
                )
                message = signature.to_bytes()
        self.voted[voter] = True
        ctx.emit(self, "VoteAccepted", deal_id=self.deal_id, voter=voter, path=path)
        if all(self.voted.get(party, False) for party in self.plist):
            self._release(ctx)
        return True

    # ------------------------------------------------------------------
    # Timeout refund
    # ------------------------------------------------------------------
    def refund(self, ctx: CallContext) -> bool:
        """Refund escrowed assets after the terminal timeout."""
        ctx.require(
            ctx.now >= self.t0 + len(self.plist) * self.delta,
            "terminal timeout not reached",
        )
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        self._refund(ctx)
        return True

    # ------------------------------------------------------------------
    # Off-chain inspection
    # ------------------------------------------------------------------
    def peek_voted(self) -> set[Address]:
        """Which parties' votes this contract has accepted (unmetered)."""
        return {party for party in self.plist if self.voted.peek(party, False)}

    def terminal_deadline(self) -> float:
        """``t0 + N·Δ``: when refunds become possible."""
        return self.t0 + len(self.plist) * self.delta
