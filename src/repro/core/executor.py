"""End-to-end deal execution on the simulator.

:class:`DealExecutor` assembles a full adversarial-commerce system for
one deal — chains, tokens, escrow contracts, the CBC if required, the
network, and the parties — runs it to quiescence, and returns a
:class:`DealResult` with holdings snapshots, receipts, per-phase gas,
and a timeline.  Everything is deterministic given the seed.

The division of labour mirrors the paper's phases (§4.1): the executor
performs the *clearing* phase (broadcasting the deal and, for the CBC
protocol, arranging the ``startDeal`` entry); the parties do the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.gas import GasBreakdown
from repro.chain.ledger import Chain
from repro.chain.tokens import FungibleToken, NonFungibleToken
from repro.chain.tx import Receipt, Transaction
from repro.consensus.bft import CertifiedBlockchain, DealStatus, LogEntry
from repro.consensus.pow_log import PowCertifiedLog
from repro.consensus.validators import ValidatorSet
from repro.core.config import ProofKind, ProtocolConfig, ProtocolKind
from repro.core.deal import DealSpec
from repro.core.escrow import EscrowManager, EscrowState
from repro.core.cbc import CbcEscrow, PowCbcEscrow
from repro.core.parties import CompliantParty
from repro.core.timelock import TimelockEscrow
from repro.crypto.keys import Wallet
from repro.errors import ConfigurationError
from repro.sim.faults import FaultPlan
from repro.sim.network import EventuallySynchronousNetwork, Network, SynchronousNetwork
from repro.sim.rng import DeterministicRng
from repro.sim.simulator import Simulator

Holdings = dict


@dataclass
class DealEnvironment:
    """Everything the parties can see and touch during a run."""

    simulator: Simulator
    network: Network
    wallet: Wallet
    chains: dict
    tokens: dict
    escrows: dict
    cbc: CertifiedBlockchain | None = None
    start_hash: bytes = b""
    pow_log: object | None = None


@dataclass
class Timeline:
    """Milestone times of one run (absolute simulator ticks)."""

    started_at: float = 0.0
    escrow_done: float | None = None
    transfers_done: float | None = None
    all_votes_cast: float | None = None
    settled_at: float | None = None
    ended_at: float = 0.0

    def phase_durations(self) -> dict[str, float | None]:
        """Durations of escrow / transfer / commit in ticks."""
        escrow = (
            self.escrow_done - self.started_at if self.escrow_done is not None else None
        )
        transfer = (
            self.transfers_done - self.escrow_done
            if self.transfers_done is not None and self.escrow_done is not None
            else None
        )
        commit = (
            self.settled_at - self.transfers_done
            if self.settled_at is not None and self.transfers_done is not None
            else None
        )
        return {"escrow": escrow, "transfer": transfer, "commit": commit}


@dataclass
class DealResult:
    """The observable outcome of one deal execution."""

    spec: DealSpec
    config: ProtocolConfig
    initial_holdings: Holdings
    final_holdings: Holdings
    receipts: list[Receipt]
    escrow_states: dict
    timeline: Timeline
    party_stats: dict
    env: DealEnvironment
    effective_delta: float

    def gas_by_phase(self, include_reverted: bool = False) -> dict[str, GasBreakdown]:
        """Aggregate per-phase gas.

        By default only successful transactions count (the protocol's
        intrinsic cost, what Figure 4 tabulates); ``include_reverted``
        adds the waste from benign races such as two parties forwarding
        the same vote.
        """
        by_phase: dict[str, GasBreakdown] = {}
        for receipt in self.receipts:
            if not receipt.ok and not include_reverted:
                continue
            phase = receipt.tx.phase or "other"
            by_phase[phase] = by_phase.get(phase, GasBreakdown.zero()) + receipt.gas
        return by_phase

    def gas_total(self) -> GasBreakdown:
        """Total gas across all receipts."""
        total = GasBreakdown.zero()
        for receipt in self.receipts:
            total = total + receipt.gas
        return total

    def all_committed(self) -> bool:
        """Whether every escrow released (the 'all' outcome)."""
        return all(state is EscrowState.RELEASED for state in self.escrow_states.values())

    def all_refunded(self) -> bool:
        """Whether every escrow refunded (the 'nothing' outcome)."""
        return all(state is EscrowState.REFUNDED for state in self.escrow_states.values())

    def stuck_escrows(self) -> list[str]:
        """Assets still locked in escrow at the end of the run."""
        return [
            asset_id
            for asset_id, state in self.escrow_states.items()
            if state is EscrowState.ACTIVE
        ]


def auto_config(
    spec: DealSpec,
    kind: ProtocolKind,
    msg_bound: float = 1.0,
    block_interval: float = 1.0,
    altruistic_votes: bool = False,
    proof_kind: ProofKind = ProofKind.STATUS_CERTIFICATE,
    pow_confirmations: int = 3,
) -> ProtocolConfig:
    """Derive safe Δ / t0 / patience values from the substrate timing.

    One observable state change costs at most ``2·msg_bound +
    block_interval`` (submit, inclusion, notification); Δ doubles that
    for slack.  ``t0`` leaves room for escrow, (sequential) transfers,
    and validation, as §5 prescribes.
    """
    cycle = 2 * msg_bound + block_interval
    delta = 2 * cycle
    t0 = (spec.t_transfers + 6) * cycle
    patience = t0 + (spec.n_parties + 4) * delta
    return ProtocolConfig(
        kind=kind,
        delta=delta,
        t0=t0,
        patience=patience,
        altruistic_votes=altruistic_votes,
        proof_kind=proof_kind,
        pow_confirmations=pow_confirmations,
    )


class DealExecutor:
    """Build and run one cross-chain deal."""

    def __init__(
        self,
        spec: DealSpec,
        parties: list[CompliantParty],
        config: ProtocolConfig,
        seed: int = 0,
        msg_bound: float = 1.0,
        block_interval: float = 1.0,
        validators_f: int = 1,
        reconfigurations: int = 0,
        gst: float = 0.0,
        fault_plan: FaultPlan | None = None,
        horizon: float | None = None,
    ):
        if {party.address for party in parties} != set(spec.parties):
            raise ConfigurationError("party list does not match the deal's plist")
        self.spec = spec
        self.parties = list(parties)
        self.config = config
        self.seed = seed
        self.msg_bound = msg_bound
        self.block_interval = block_interval
        self.validators_f = validators_f
        self.reconfigurations = reconfigurations
        self.gst = gst
        self.fault_plan = fault_plan
        self.horizon = horizon

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def _build(self) -> DealEnvironment:
        simulator = Simulator()
        rng = DeterministicRng(self.seed)
        if self.gst > 0:
            network: Network = EventuallySynchronousNetwork(
                simulator, delta=self.msg_bound, gst=self.gst, rng=rng
            )
        else:
            network = SynchronousNetwork(simulator, delta=self.msg_bound, rng=rng)
        wallet = Wallet()
        for party in self.parties:
            wallet.register(party.keypair)

        chains: dict[str, Chain] = {}
        for chain_id in self.spec.chains():
            chain = Chain(
                chain_id,
                simulator,
                wallet,
                block_interval=self.block_interval,
            )
            chains[chain_id] = chain
            network.register(
                f"chain:{chain_id}",
                lambda message, chain=chain: self._on_chain_message(chain, message),
            )

        tokens: dict[tuple[str, str], object] = {}
        for asset in self.spec.assets:
            key = (asset.chain_id, asset.token)
            if key in tokens:
                continue
            if asset.fungible:
                token = FungibleToken(asset.token)
            else:
                token = NonFungibleToken(asset.token)
            chains[asset.chain_id].publish(token)
            tokens[key] = token

        # Mint initial holdings (setup: outside any block).
        minter = self.spec.parties[0]
        for asset in self.spec.assets:
            chain = chains[asset.chain_id]
            if asset.fungible:
                chain.execute_now(
                    Transaction(
                        sender=minter,
                        contract=asset.token,
                        method="mint",
                        args={"to": asset.owner, "amount": asset.amount},
                        phase="setup",
                    )
                )
            else:
                for token_id in asset.token_ids:
                    chain.execute_now(
                        Transaction(
                            sender=minter,
                            contract=asset.token,
                            method="mint",
                            args={
                                "to": asset.owner,
                                "token_id": token_id,
                                "metadata": {"deal": self.spec.deal_id.hex()[:8]},
                            },
                            phase="setup",
                        )
                    )

        env = DealEnvironment(
            simulator=simulator,
            network=network,
            wallet=wallet,
            chains=chains,
            tokens=tokens,
            escrows={},
        )

        # The shared log, if this protocol needs one.
        if self.config.kind is ProtocolKind.CBC_POW:
            pow_log = PowCertifiedLog(
                simulator, wallet, block_interval=self.block_interval
            )
            pow_log.register_deal(self.spec.deal_id, self.spec.parties)
            env.pow_log = pow_log
            network.register(
                "cbc", lambda message: self._on_pow_message(pow_log, message)
            )
        if self.config.kind is ProtocolKind.CBC:
            validators = ValidatorSet.generate(self.validators_f, seed=f"cbc/{self.seed}")
            cbc = CertifiedBlockchain(
                simulator, validators, wallet, block_interval=self.block_interval
            )
            env.cbc = cbc
            network.register("cbc", lambda message: self._on_cbc_message(cbc, message))
            starter = self.parties[0]
            start_entry = LogEntry(
                kind="startDeal",
                deal_id=self.spec.deal_id,
                party=starter.address,
                plist=self.spec.parties,
            )
            env.start_hash = start_entry.message()
            signed_start = LogEntry(
                kind=start_entry.kind,
                deal_id=start_entry.deal_id,
                party=start_entry.party,
                plist=start_entry.plist,
                signature=starter.keypair.sign(start_entry.message()),
            )
            simulator.schedule(
                0.0,
                lambda: network.send(starter.endpoint, "cbc", ("entry", signed_start)),
                label="clearing/startDeal",
            )
            initial_keys = cbc.initial_public_keys

        # Escrow contracts, one per asset.
        for asset in self.spec.assets:
            name = self.spec.escrow_contract_name(asset.asset_id)
            if self.config.kind is ProtocolKind.TIMELOCK:
                escrow: EscrowManager = TimelockEscrow(
                    name,
                    self.spec.deal_id,
                    self.spec.parties,
                    asset,
                    t0=self.config.t0,
                    delta=self.config.delta,
                    batch_votes=self.config.batch_vote_verification,
                )
            elif self.config.kind is ProtocolKind.CBC:
                escrow = CbcEscrow(
                    name,
                    self.spec.deal_id,
                    self.spec.parties,
                    asset,
                    start_hash=env.start_hash,
                    validator_keys=initial_keys,
                )
            else:
                escrow = PowCbcEscrow(
                    name,
                    self.spec.deal_id,
                    self.spec.parties,
                    asset,
                    min_confirmations=self.config.pow_confirmations,
                )
            chains[asset.chain_id].publish(escrow)
            env.escrows[asset.asset_id] = escrow

        # Bind parties and fan out block notifications.
        for party in self.parties:
            party.bind(env, self.spec, self.config)
        for chain in chains.values():
            chain.subscribe(self._make_fanout(env, chain))
        if env.cbc is not None:
            env.cbc.subscribe(self._make_cbc_fanout(env))
        if env.pow_log is not None:
            env.pow_log.subscribe(self._make_cbc_fanout(env))

        # Planned reconfigurations (E3 ablation) happen mid-run, after
        # the deal has started but before settlement typically begins.
        if env.cbc is not None and self.reconfigurations:
            for k in range(self.reconfigurations):
                simulator.schedule(
                    1.0 + k,
                    lambda: env.cbc.reconfigure(seed=f"cbc/{self.seed}"),
                    label="cbc/reconfigure",
                )

        if self.fault_plan is not None:
            self.fault_plan.install(network)

        # Clearing phase: everyone starts at t = 0.
        for party in self.parties:
            simulator.schedule(0.0, party.begin, label=f"{party.label}/begin")
        return env

    def _make_fanout(self, env: DealEnvironment, chain: Chain):
        endpoints = [party.endpoint for party in self.parties]

        def fanout(ch, block) -> None:
            for endpoint in endpoints:
                env.network.send(
                    f"chain:{ch.chain_id}", endpoint, ("block", ch.chain_id, block)
                )

        return fanout

    def _make_cbc_fanout(self, env: DealEnvironment):
        endpoints = [party.endpoint for party in self.parties]

        def fanout(cbc, block) -> None:
            for endpoint in endpoints:
                env.network.send("cbc", endpoint, ("cbc_block", block))

        return fanout

    @staticmethod
    def _on_chain_message(chain: Chain, message) -> None:
        kind, payload = message.payload[0], message.payload[1]
        if kind == "tx":
            chain.submit(payload)

    @staticmethod
    def _on_cbc_message(cbc: CertifiedBlockchain, message) -> None:
        kind, payload = message.payload[0], message.payload[1]
        if kind == "entry":
            cbc.submit(payload)

    @staticmethod
    def _on_pow_message(pow_log: "PowCertifiedLog", message) -> None:
        kind, payload = message.payload[0], message.payload[1]
        if kind == "entry":
            pow_log.submit(payload)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> DealResult:
        """Assemble, run to quiescence, and report."""
        env = self._build()
        initial = snapshot_holdings(env, self.spec)
        env.simulator.run(until=self.horizon, max_events=2_000_000)
        final = snapshot_holdings(env, self.spec)
        receipts = collect_receipts(env)
        timeline = build_timeline(receipts, env)
        escrow_states = {
            asset_id: escrow.peek_state() for asset_id, escrow in env.escrows.items()
        }
        return DealResult(
            spec=self.spec,
            config=self.config,
            initial_holdings=initial,
            final_holdings=final,
            receipts=receipts,
            escrow_states=escrow_states,
            timeline=timeline,
            party_stats={party.label: party.stats for party in self.parties},
            env=env,
            effective_delta=self.config.delta,
        )


# ----------------------------------------------------------------------
# Result assembly helpers
# ----------------------------------------------------------------------
def snapshot_holdings(env: DealEnvironment, spec: DealSpec) -> Holdings:
    """Snapshot who owns what, per (chain, token).

    Fungible tokens map party address -> balance; non-fungible tokens
    map party address -> frozenset of token ids.  Escrow contract
    addresses appear alongside parties, so locked-up value is visible.
    """
    holders = list(spec.parties) + [escrow.address for escrow in env.escrows.values()]
    snapshot: Holdings = {}
    for (chain_id, token_name), token in env.tokens.items():
        per_holder: dict = {}
        if isinstance(token, FungibleToken):
            for holder in holders:
                per_holder[holder] = token.peek_balance(holder)
        else:
            all_ids = [
                token_id
                for asset in spec.assets
                if asset.chain_id == chain_id and asset.token == token_name
                for token_id in asset.token_ids
            ]
            for holder in holders:
                per_holder[holder] = frozenset(
                    token_id for token_id in all_ids if token.peek_owner(token_id) == holder
                )
        snapshot[(chain_id, token_name)] = per_holder
    return snapshot


def collect_receipts(env: DealEnvironment) -> list[Receipt]:
    """All block-executed receipts across chains, in execution order."""
    receipts: list[Receipt] = []
    for chain in env.chains.values():
        for block in chain.blocks:
            receipts.extend(block.receipts)
    receipts.sort(key=lambda receipt: (receipt.executed_at, receipt.tx.tx_id))
    return receipts


def build_timeline(receipts: list[Receipt], env: DealEnvironment) -> Timeline:
    """Derive phase milestones from the receipt stream."""
    timeline = Timeline(started_at=0.0, ended_at=env.simulator.now)
    deposits: list[float] = []
    transfers: list[float] = []
    votes: list[float] = []
    settles: list[float] = []
    for receipt in receipts:
        if not receipt.ok:
            continue
        phase = receipt.tx.phase
        if phase == "escrow" and receipt.tx.method == "deposit":
            deposits.append(receipt.executed_at)
        elif phase == "transfer":
            transfers.append(receipt.executed_at)
        elif phase == "commit":
            votes.append(receipt.executed_at)
        for event in receipt.events:
            if event.name in ("Released", "Refunded"):
                settles.append(receipt.executed_at)
    if deposits:
        timeline.escrow_done = max(deposits)
    if transfers:
        timeline.transfers_done = max(transfers)
    elif deposits:
        timeline.transfers_done = timeline.escrow_done
    if votes:
        timeline.all_votes_cast = max(votes)
    if settles:
        timeline.settled_at = max(settles)
    return timeline
