"""The paper's primary contribution: cross-chain deals.

* :mod:`repro.core.deal` — deal specifications: the transfer matrix of
  Figure 1, the digraph of Figure 2, well-formedness (§5.1);
* :mod:`repro.core.escrow` — the generic EscrowManager of Figure 3;
* :mod:`repro.core.timelock` — the timelock commit protocol of §5
  (Figure 5): path-signature votes with ``|p|·Δ`` deadlines;
* :mod:`repro.core.cbc` — the CBC commit protocol of §6 (Figure 6):
  proof-checked commit/abort against a certified blockchain;
* :mod:`repro.core.proofs` — contract-side proof verification;
* :mod:`repro.core.parties` — compliant party state machines;
* :mod:`repro.core.executor` — end-to-end deal execution on the
  simulator;
* :mod:`repro.core.outcomes` — evaluation of the paper's safety and
  liveness properties (Properties 1-3) over a finished run.
"""

from repro.core.deal import Asset, DealSpec, TransferStep, deal_digraph, deal_matrix
from repro.core.escrow import EscrowManager
from repro.core.executor import DealExecutor, DealResult, ProtocolKind
from repro.core.outcomes import OutcomeReport, evaluate_outcome
from repro.core.parties import CompliantParty
from repro.core.timelock import TimelockEscrow
from repro.core.cbc import CbcEscrow

__all__ = [
    "Asset",
    "CbcEscrow",
    "CompliantParty",
    "DealExecutor",
    "DealResult",
    "DealSpec",
    "EscrowManager",
    "OutcomeReport",
    "ProtocolKind",
    "TimelockEscrow",
    "TransferStep",
    "deal_digraph",
    "deal_matrix",
    "evaluate_outcome",
]
