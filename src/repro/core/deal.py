"""Deal specifications: matrix, digraph, and well-formedness.

A deal (paper §2.1) is captured by a matrix whose entry *(i, j)* lists
the assets party *i* transfers to party *j*.  Operationally we specify
a deal as:

* a set of **assets**, each escrowed once on its home chain by its
  original owner (the paper's *m*);
* a sequence of **transfer steps**, each tentatively moving some or
  all of an asset from one party to another inside the escrow (the
  paper's *t*; multi-hop flows like Bob → Alice → Carol are successive
  steps on the same asset).

The Figure 1 matrix and Figure 2 digraph are both derived views of the
step list.  Well-formedness (§5.1) is strong connectivity of the
digraph: a deal that is not strongly connected contains free riders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import networkx as nx

from repro.crypto.hashing import hash_concat
from repro.crypto.keys import Address
from repro.errors import IllFormedDealError, MalformedDealError

# The atomic-commit protocols a deal may nominate (paper §5, §6, plus
# the market's simplified unanimity-order flow).  The protocol is part
# of the spec — and of ``deal_id`` — because the parties' signatures
# must bind *how* the deal commits, not just what it trades.
PROTOCOL_UNANIMITY = "unanimity"
PROTOCOL_TIMELOCK = "timelock"
PROTOCOL_CBC = "cbc"
PROTOCOLS = (PROTOCOL_UNANIMITY, PROTOCOL_TIMELOCK, PROTOCOL_CBC)


@dataclass(frozen=True)
class Asset:
    """One escrowed asset: a fungible amount or a set of unique tokens.

    ``asset_id`` is unique within the deal.  ``owner`` is the party
    that escrows the asset (and recovers it on abort — the A-map of
    §4 never changes after escrow).
    """

    asset_id: str
    chain_id: str
    token: str
    owner: Address
    amount: int = 0
    token_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if bool(self.amount) == bool(self.token_ids):
            raise MalformedDealError(
                f"asset {self.asset_id!r} must have an amount xor token ids"
            )
        if self.amount < 0:
            raise MalformedDealError(f"asset {self.asset_id!r} has negative amount")

    @property
    def fungible(self) -> bool:
        """Whether the asset is a fungible amount (vs unique tokens)."""
        return self.amount > 0

    def units(self) -> int:
        """The asset's size (amount, or number of unique tokens)."""
        return self.amount if self.fungible else len(self.token_ids)


@dataclass(frozen=True)
class TransferStep:
    """One tentative transfer: part of ``asset_id`` from giver to receiver."""

    asset_id: str
    giver: Address
    receiver: Address
    amount: int = 0
    token_ids: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if bool(self.amount) == bool(self.token_ids):
            raise MalformedDealError("step must carry an amount xor token ids")
        if self.giver == self.receiver:
            raise MalformedDealError("self-transfers are not allowed")


@dataclass(frozen=True)
class DealSpec:
    """A complete deal specification.

    ``labels`` maps addresses to display names ("alice", ...) for
    rendering the matrix; the protocol itself only uses addresses.
    """

    parties: tuple[Address, ...]
    assets: tuple[Asset, ...]
    steps: tuple[TransferStep, ...]
    labels: dict = field(default_factory=dict, compare=False, hash=False)
    nonce: bytes = b""
    protocol: str = PROTOCOL_UNANIMITY

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise MalformedDealError(f"unknown commit protocol {self.protocol!r}")
        if len(set(self.parties)) != len(self.parties):
            raise MalformedDealError("duplicate parties")
        party_set = set(self.parties)
        asset_ids = [asset.asset_id for asset in self.assets]
        if len(set(asset_ids)) != len(asset_ids):
            raise MalformedDealError("duplicate asset ids")
        assets_by_id = {asset.asset_id: asset for asset in self.assets}
        for asset in self.assets:
            if asset.owner not in party_set:
                raise MalformedDealError(
                    f"asset {asset.asset_id!r} owned by non-party {asset.owner}"
                )
        # Replay the steps against the C-map to check flow feasibility.
        holdings = _initial_holdings(self.assets)
        for step in self.steps:
            if step.giver not in party_set or step.receiver not in party_set:
                raise MalformedDealError("step references a non-party")
            asset = assets_by_id.get(step.asset_id)
            if asset is None:
                raise MalformedDealError(f"step references unknown asset {step.asset_id!r}")
            _apply_step(holdings, asset, step)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @cached_property
    def deal_id(self) -> bytes:
        """A content-derived identifier, used as the protocol nonce.

        Cached: the spec is frozen, and the market runtime reads the
        id on every step of every deal.
        """
        parts = [b"repro/deal", self.nonce, self.protocol.encode("utf-8")]
        parts.extend(address.value for address in self.parties)
        for asset in self.assets:
            parts.append(
                hash_concat(
                    asset.asset_id.encode("utf-8"),
                    asset.chain_id.encode("utf-8"),
                    asset.token.encode("utf-8"),
                    asset.owner.value,
                    asset.amount.to_bytes(16, "big"),
                    *[tid.encode("utf-8") for tid in asset.token_ids],
                )
            )
        for step in self.steps:
            parts.append(
                hash_concat(
                    step.asset_id.encode("utf-8"),
                    step.giver.value,
                    step.receiver.value,
                    step.amount.to_bytes(16, "big"),
                    *[tid.encode("utf-8") for tid in step.token_ids],
                )
            )
        return hash_concat(*parts)

    def label(self, address: Address) -> str:
        """The display name of ``address`` (falls back to hex)."""
        return self.labels.get(address, address.hex()[:10])

    # ------------------------------------------------------------------
    # Derived quantities (the paper's n, m, t)
    # ------------------------------------------------------------------
    @property
    def n_parties(self) -> int:
        """The paper's *n*."""
        return len(self.parties)

    @property
    def m_assets(self) -> int:
        """The paper's *m*."""
        return len(self.assets)

    @property
    def t_transfers(self) -> int:
        """The paper's *t* (t >= m is not required: an asset with no
        step simply returns to its owner either way)."""
        return len(self.steps)

    def asset(self, asset_id: str) -> Asset:
        """Look up an asset by id."""
        for asset in self.assets:
            if asset.asset_id == asset_id:
                return asset
        raise MalformedDealError(f"unknown asset {asset_id!r}")

    def chains(self) -> tuple[str, ...]:
        """The distinct chains the deal touches, sorted."""
        return tuple(sorted({asset.chain_id for asset in self.assets}))

    # ------------------------------------------------------------------
    # Commit-state projection
    # ------------------------------------------------------------------
    def final_commit_holdings(self) -> dict[str, dict[Address, object]]:
        """Project the C-map after all steps.

        Returns ``{asset_id: {party: amount}}`` for fungible assets and
        ``{asset_id: {party: set_of_token_ids}}`` for non-fungible
        ones — who owns what if the deal commits.
        """
        holdings = _initial_holdings(self.assets)
        assets_by_id = {asset.asset_id: asset for asset in self.assets}
        for step in self.steps:
            _apply_step(holdings, assets_by_id[step.asset_id], step)
        return holdings

    def incoming(self, party: Address) -> dict[str, object]:
        """What ``party`` nets per asset if the deal commits,
        excluding what it escrowed itself (its column in Figure 1)."""
        final = self.final_commit_holdings()
        result: dict[str, object] = {}
        for asset in self.assets:
            gained = final[asset.asset_id].get(party)
            if gained is None:
                continue
            if asset.owner == party:
                continue
            if asset.fungible and gained > 0:
                result[asset.asset_id] = gained
            elif not asset.fungible and gained:
                result[asset.asset_id] = set(gained)
        return result

    def outgoing(self, party: Address) -> dict[str, object]:
        """What ``party`` relinquishes per asset if the deal commits
        (its row in Figure 1)."""
        final = self.final_commit_holdings()
        result: dict[str, object] = {}
        for asset in self.assets:
            if asset.owner != party:
                continue
            kept = final[asset.asset_id].get(party)
            if asset.fungible:
                given = asset.amount - (kept or 0)
                if given > 0:
                    result[asset.asset_id] = given
            else:
                given = set(asset.token_ids) - set(kept or set())
                if given:
                    result[asset.asset_id] = given
        return result

    def escrow_contract_name(self, asset_id: str) -> str:
        """The canonical on-chain name of an asset's escrow contract."""
        return f"escrow/{self.deal_id.hex()[:12]}/{asset_id}"

    def is_well_formed(self) -> bool:
        """Strong connectivity of the deal digraph (§5.1)."""
        graph = deal_digraph(self)
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_strongly_connected(graph)

    def require_well_formed(self) -> None:
        """Raise :class:`IllFormedDealError` if free riders exist."""
        if not self.is_well_formed():
            raise IllFormedDealError(
                "deal digraph is not strongly connected (free riders present)"
            )


def _initial_holdings(assets: tuple[Asset, ...]) -> dict[str, dict[Address, object]]:
    holdings: dict[str, dict[Address, object]] = {}
    for asset in assets:
        if asset.fungible:
            holdings[asset.asset_id] = {asset.owner: asset.amount}
        else:
            holdings[asset.asset_id] = {asset.owner: set(asset.token_ids)}
    return holdings


def _apply_step(
    holdings: dict[str, dict[Address, object]], asset: Asset, step: TransferStep
) -> None:
    per_asset = holdings[step.asset_id]
    if asset.fungible:
        if step.token_ids:
            raise MalformedDealError(
                f"step on fungible asset {asset.asset_id!r} names token ids"
            )
        have = per_asset.get(step.giver, 0)
        if have < step.amount:
            raise MalformedDealError(
                f"step overdraws asset {asset.asset_id!r}: "
                f"{step.giver} has {have}, needs {step.amount}"
            )
        per_asset[step.giver] = have - step.amount
        per_asset[step.receiver] = per_asset.get(step.receiver, 0) + step.amount
    else:
        if step.amount:
            raise MalformedDealError(
                f"step on non-fungible asset {asset.asset_id!r} names an amount"
            )
        have = per_asset.get(step.giver, set())
        missing = set(step.token_ids) - set(have)
        if missing:
            raise MalformedDealError(
                f"step moves tokens {sorted(missing)} that {step.giver} lacks"
            )
        per_asset[step.giver] = set(have) - set(step.token_ids)
        receiver_have = per_asset.get(step.receiver, set())
        per_asset[step.receiver] = set(receiver_have) | set(step.token_ids)


def deal_digraph(spec: DealSpec) -> "nx.DiGraph":
    """The Figure 2 digraph: a vertex per party, an arc per transfer."""
    graph = nx.DiGraph()
    graph.add_nodes_from(spec.parties)
    for step in spec.steps:
        if graph.has_edge(step.giver, step.receiver):
            graph[step.giver][step.receiver]["steps"].append(step)
        else:
            graph.add_edge(step.giver, step.receiver, steps=[step])
    # Parties with no arcs at all are not part of the exchange.
    isolated = [node for node in graph.nodes if graph.degree(node) == 0]
    graph.remove_nodes_from(isolated)
    return graph


def deal_matrix(spec: DealSpec) -> dict[tuple[Address, Address], list[str]]:
    """The Figure 1 matrix: ``(giver, receiver) -> transfer descriptions``."""
    matrix: dict[tuple[Address, Address], list[str]] = {}
    for step in spec.steps:
        asset = spec.asset(step.asset_id)
        if asset.fungible:
            description = f"{step.amount} {asset.token}"
        else:
            description = f"{asset.token}[{', '.join(step.token_ids)}]"
        matrix.setdefault((step.giver, step.receiver), []).append(description)
    return matrix
