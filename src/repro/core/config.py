"""Protocol configuration shared by parties and the executor."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigurationError


class ProtocolKind(Enum):
    """Which commit protocol a deal execution uses."""

    TIMELOCK = "timelock"
    CBC = "cbc"
    CBC_POW = "cbc-pow"


class ProofKind(Enum):
    """Which proof form CBC parties present to escrow contracts (§6.2)."""

    STATUS_CERTIFICATE = "status"
    BLOCK_PROOF = "blocks"


@dataclass(frozen=True)
class ProtocolConfig:
    """Timing and behaviour knobs for one deal execution.

    ``delta`` is the protocol's Δ: the assumed bound on making a chain
    state change observable.  ``t0`` is the commit-phase start used by
    timelock deadline arithmetic.  ``patience`` is how long a CBC party
    waits before voting abort (weak liveness).  ``altruistic_votes``
    switches the Figure 7 ablation: parties send commit votes to every
    escrow contract directly (commit latency Δ) instead of only their
    incoming contracts (latency O(n)Δ).
    """

    kind: ProtocolKind = ProtocolKind.TIMELOCK
    delta: float = 10.0
    t0: float = 100.0
    patience: float = 500.0
    altruistic_votes: bool = False
    proof_kind: ProofKind = ProofKind.STATUS_CERTIFICATE
    pow_confirmations: int = 3
    rescind_wait: float | None = None  # defaults to delta
    # §9 ablation: timelock contracts batch-verify vote paths.
    batch_vote_verification: bool = False

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError("delta must be positive")
        if self.t0 < 0:
            raise ConfigurationError("t0 must be non-negative")
        if self.patience <= 0:
            raise ConfigurationError("patience must be positive")

    @property
    def effective_rescind_wait(self) -> float:
        """How long a commit vote must stand before an abort rescind."""
        return self.rescind_wait if self.rescind_wait is not None else self.delta
