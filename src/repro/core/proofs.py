"""Cross-chain proofs of commit and abort (paper §6.2).

A party claiming an escrowed asset (or a refund) must convince a
*passive contract* on the asset's chain that the CBC recorded a
decisive commit (or abort).  Three proof flavours:

* :class:`StatusProof` — the optimized form: one quorum-signed status
  certificate, plus the handover chain if validators reconfigured.
  Verification costs ``(k+1)·(2f+1)`` signature checks.
* :class:`BlockProof` — the straightforward form: the certified block
  subsequence from the deal's startDeal to the decisive vote; the
  contract replays the entries itself.  Verification costs one quorum
  check *per block* plus the replay.
* :class:`PowVoteProof` — for a proof-of-work CBC: a linked block
  suffix with confirmation depth.  The contract can check linkage and
  depth but **not** canonicality — which is exactly why the §6.2
  private-mining attack works against it.

All verifier functions charge signature verifications on the calling
context's gas meter, so the Figure 4 cost rows are measured, not
asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.contracts import CallContext
from repro.consensus.bft import CbcBlock, DealStatus, LogEntry, StatusCertificate
from repro.consensus.validators import HandoverCertificate, batch_verify_quorum
from repro.consensus.pow import PowProof, PowVoteProof, encode_pow_vote
from repro.crypto.hashing import hash_concat
from repro.crypto.schnorr import PublicKey


@dataclass(frozen=True)
class StatusProof:
    """A status certificate plus the validator handover chain."""

    certificate: StatusCertificate
    handovers: tuple[HandoverCertificate, ...] = ()


@dataclass(frozen=True)
class BlockProof:
    """A certified block subsequence plus the handover chain."""

    blocks: tuple[CbcBlock, ...]
    handovers: tuple[HandoverCertificate, ...] = ()


# PowVoteProof and encode_pow_vote live in repro.consensus.pow (they
# are consensus-level constructs shared with the PoW log) and are
# re-exported here for the proof-verification API.

# ----------------------------------------------------------------------
# Validator-set resolution (shared by both BFT proof forms)
# ----------------------------------------------------------------------
def _resolve_validators(
    ctx: CallContext,
    initial_keys: tuple[PublicKey, ...],
    handovers: tuple[HandoverCertificate, ...],
    target_epoch: int,
) -> tuple[PublicKey, ...] | None:
    """Walk the handover chain from the initial set to ``target_epoch``.

    Each hop costs ``2f+1`` signature verifications.  Returns the
    public keys in charge at ``target_epoch``, or ``None`` if the
    chain is broken or does not reach the target.
    """
    keys = initial_keys
    epoch = 0
    quorum = _quorum_size(len(keys))
    for handover in handovers:
        if epoch >= target_epoch:
            break
        if handover.from_epoch != epoch or handover.to_epoch != epoch + 1:
            return None
        message = HandoverCertificate.message(
            handover.from_epoch, handover.to_epoch, handover.new_public_keys
        )
        if not _check_quorum(ctx, keys, quorum, message, handover.signatures):
            return None
        keys = handover.new_public_keys
        quorum = _quorum_size(len(keys))
        epoch += 1
    if epoch != target_epoch:
        return None
    return keys


def _quorum_size(set_size: int) -> int:
    f = (set_size - 1) // 3
    return 2 * f + 1


def _check_quorum(
    ctx: CallContext,
    valid_keys: tuple[PublicKey, ...],
    quorum: int,
    message: bytes,
    signatures,
) -> bool:
    """Verify ≥ ``quorum`` distinct valid validator signatures.

    Wall-clock fast path: a clean certificate is checked as one
    batched linear combination (and the verdict is memoized on the
    certificate transcript, so the same certificate presented to every
    chain is a cache hit).  The *gas* charged is unchanged — the
    protocol still pays the full 3000-gas price per signature, exactly
    as the per-signature replay below would charge.
    """
    entries = list(signatures)
    if entries and batch_verify_quorum(valid_keys, quorum, message, entries):
        # Batch acceptance certifies every member signature, so this
        # charges what the sequential replay would have: one
        # verification per signature.
        ctx.meter.charge_sig_verify(len(entries))
        return True
    # Slow path (malformed or sub-quorum certificates): the exact
    # per-signature replay, charging gas signature by signature.
    key_set = set(valid_keys)
    seen: set[int] = set()
    good = 0
    for entry in entries:
        if entry.public_key.point in seen:
            return False  # duplicate signer: malformed certificate
        seen.add(entry.public_key.point)
        if entry.public_key not in key_set:
            return False  # only validators may vote
        if not ctx.verify_raw_signature(entry.public_key, message, entry.signature):
            return False
        good += 1
    return good >= quorum


# ----------------------------------------------------------------------
# Verifiers
# ----------------------------------------------------------------------
def verify_status_proof(
    ctx: CallContext,
    proof: StatusProof,
    initial_keys: tuple[PublicKey, ...],
    deal_id: bytes,
    start_hash: bytes,
) -> DealStatus | None:
    """Check a status certificate; return its status or ``None``.

    Cost: ``(k+1)·(2f+1)`` signature verifications for ``k``
    reconfigurations — the CBC row of Figure 4.
    """
    certificate = proof.certificate
    if certificate.deal_id != deal_id or certificate.start_hash != start_hash:
        return None
    keys = _resolve_validators(ctx, initial_keys, proof.handovers, certificate.epoch)
    if keys is None:
        return None
    message = StatusCertificate.message(
        certificate.deal_id, certificate.start_hash, certificate.status, certificate.epoch
    )
    if not _check_quorum(ctx, keys, _quorum_size(len(keys)), message, certificate.signatures):
        return None
    if certificate.status not in (DealStatus.COMMITTED, DealStatus.ABORTED):
        return None
    return certificate.status


def verify_block_proof(
    ctx: CallContext,
    proof: BlockProof,
    initial_keys: tuple[PublicKey, ...],
    deal_id: bytes,
    start_hash: bytes,
    plist,
) -> DealStatus | None:
    """Check a block-subsequence proof by replaying its entries.

    The straightforward approach of §6.2: verify each block's quorum
    certificate and linkage, find the startDeal whose hash matches the
    escrow's ``start_hash``, then replay commit/abort votes to find
    the decisive one.  Much more expensive than a status certificate —
    the ablation in benchmark E3 quantifies the gap.
    """
    if not proof.blocks:
        return None
    # Authenticate every block.
    previous: CbcBlock | None = None
    for block in proof.blocks:
        keys = _resolve_validators(ctx, initial_keys, proof.handovers, block.epoch)
        if keys is None:
            return None
        if not _check_quorum(
            ctx, keys, _quorum_size(len(keys)), block.body_hash(), block.certificate
        ):
            return None
        if previous is not None:
            if block.height != previous.height + 1:
                return None
            if block.parent_hash != previous.body_hash():
                return None
        previous = block
    # Replay the deal's entries.
    ctx.meter.charge_compute(sum(len(block.entries) for block in proof.blocks))
    started = False
    committed: set = set()
    party_set = set(plist)
    for block in proof.blocks:
        for entry in block.entries:
            if entry.deal_id != deal_id:
                continue
            if entry.kind == "startDeal":
                if entry.message() == start_hash:
                    started = True
                continue
            if not started or entry.start_hash != start_hash:
                continue
            if entry.party not in party_set:
                continue
            if entry.kind == "commit":
                committed.add(entry.party)
                if committed == party_set:
                    return DealStatus.COMMITTED
            elif entry.kind == "abort":
                return DealStatus.ABORTED
    return None


def verify_pow_proof(
    ctx: CallContext,
    proof: PowVoteProof,
    deal_id: bytes,
    plist,
    min_confirmations: int,
) -> DealStatus | None:
    """Check a PoW proof: linkage, confirmation depth, and the vote replay.

    Deliberately *cannot* detect a privately mined fork — the paper's
    point.  Cost model: one compute charge per block (hash re-check).
    """
    ctx.meter.charge_compute(len(proof.proof.blocks))
    if not proof.proof.verify(min_confirmations):
        return None
    decisive = proof.proof.blocks[proof.proof.decisive_index]
    if proof.claimed_status is DealStatus.COMMITTED:
        needed = {
            encode_pow_vote(deal_id, "commit", party.value) for party in plist
        }
        found: set[bytes] = set()
        for block in proof.proof.blocks[: proof.proof.decisive_index + 1]:
            for entry in block.entries:
                if entry in needed:
                    found.add(entry)
        return DealStatus.COMMITTED if found == needed else None
    if proof.claimed_status is DealStatus.ABORTED:
        abort_entries = {
            encode_pow_vote(deal_id, "abort", party.value) for party in plist
        }
        if any(entry in abort_entries for entry in decisive.entries):
            return DealStatus.ABORTED
        return None
    return None
