"""Incentive deposits (paper §9, "Discussion").

"Deals can also be structured to provide incentives for good
behavior.  For example, to discourage maliciously joining then
aborting deals, a party might escrow a small deposit that is lost if
that party is the first to cause the deal to fail."

:class:`DepositManager` realizes that sketch for the timelock
protocol, where the contract itself can identify the culprits: a
party "causes the deal to fail" exactly when its commit vote is
missing at the terminal timeout.  Every party escrows the same
deposit; votes are registered with the usual path-signature rules;

* if all votes arrive, every deposit is returned in full;
* at timeout, voters recover their deposits **plus** an equal share
  of the non-voters' slashed deposits; non-voters lose theirs;
* if nobody voted (the deal never got off the ground), everyone is
  refunded — there is no wronged party to compensate.

The paper notes that "designing and implementing such incentives is
an area of ongoing research"; this module reproduces the mechanism
the paper proposes and the E13 benchmark measures the payoff shift it
induces.

:func:`deal_fee_budget` extends the same cost model into block-space
*fee bidding* (the market's congestion axis): just as a rational party
sizes its good-behaviour deposit against the value the deal puts at
risk, it sizes its willingness to pay for timely sealing against that
value spread over the block slots the deal consumes.  The market
workloads derive every honest fee bid from it, so the E19 fee sweeps
price deals the way §9 says parties reason.
"""

from __future__ import annotations

from repro.chain.contracts import CallContext, Contract
from repro.crypto.keys import Address
from repro.crypto.pathsig import PathSignature, vote_message


def deal_fee_budget(steps: int, value_at_risk: int, urgency: float = 1.0) -> int:
    """A rational party's fee bid for one deal's block space (§9 model).

    ``value_at_risk`` is the total escrowed value the deal ties up
    (the quantity §9's deposit sketch protects); ``steps`` is how many
    block slots the deal's transfer plan consumes; ``urgency`` scales
    the bid the way a deadline would (an impatient party bids a larger
    slice of the value at risk).  The bid is per sealed step, at least
    1 fee unit — a funded deal never bids itself below the base-fee
    floor — and purely deterministic: integer arithmetic on the spec
    plus one float scale, no randomness.
    """
    if steps < 1 or value_at_risk < 0:
        raise ValueError("fee budget needs steps >= 1, value_at_risk >= 0")
    if urgency < 0:
        raise ValueError("urgency must be non-negative")
    return max(1, int(urgency * value_at_risk / (20 * steps)))


class DepositManager(Contract):
    """Per-deal good-behaviour deposits with slashing."""

    EXPORTS = ("deposit", "commit", "settle")

    def __init__(
        self,
        name: str,
        deal_id: bytes,
        plist: tuple[Address, ...],
        token: str,
        amount: int,
        t0: float,
        delta: float,
    ):
        super().__init__(name)
        self.deal_id = deal_id
        self.plist = tuple(plist)
        self.token = token
        self.amount = amount
        self.t0 = t0
        self.delta = delta
        self.deposits = self.storage("deposits")
        self.voted = self.storage("voted")
        self.meta = self.storage("meta")
        self.meta["settled"] = False

    # ------------------------------------------------------------------
    # Escrow phase: every party posts the same deposit
    # ------------------------------------------------------------------
    def deposit(self, ctx: CallContext) -> bool:
        """Escrow the caller's good-behaviour deposit."""
        ctx.require(ctx.sender in self.plist, "sender not in plist")
        ctx.require(not self.deposits.get(ctx.sender, False), "already deposited")
        ctx.call(
            self,
            self.token,
            "transfer_from",
            owner=ctx.sender,
            to=self.address,
            amount=self.amount,
        )
        self.deposits[ctx.sender] = True
        ctx.emit(self, "DepositPosted", deal_id=self.deal_id, party=ctx.sender)
        return True

    # ------------------------------------------------------------------
    # Commit phase: same path-signature voting as the escrow contracts
    # ------------------------------------------------------------------
    def commit(self, ctx: CallContext, path: PathSignature) -> bool:
        """Register a (possibly forwarded) commit vote."""
        voter = path.voter
        ctx.require(
            ctx.now < self.t0 + path.path_length * self.delta,
            "vote arrived after its path deadline",
        )
        ctx.require(voter in self.plist, "voter not in plist")
        ctx.require(not self.voted.get(voter, False), "duplicate vote")
        ctx.require(not path.has_duplicate_signers(), "duplicate signers on path")
        for signer in path.signers:
            ctx.require(signer in self.plist, "path signer not in plist")
        message = vote_message(self.deal_id, voter, "commit")
        for signer, signature in zip(path.signers, path.signatures):
            ctx.require(
                ctx.verify_signature(signer, message, signature),
                "invalid signature on path",
            )
            message = signature.to_bytes()
        self.voted[voter] = True
        ctx.emit(self, "VoteAccepted", deal_id=self.deal_id, voter=voter, path=path)
        if all(self.voted.get(party, False) for party in self.plist):
            self._settle(ctx)
        return True

    # ------------------------------------------------------------------
    # Settlement: full refunds on success, slashing at timeout
    # ------------------------------------------------------------------
    def settle(self, ctx: CallContext) -> bool:
        """Distribute deposits after the terminal timeout."""
        ctx.require(
            ctx.now >= self.t0 + len(self.plist) * self.delta,
            "terminal timeout not reached",
        )
        ctx.require(not self.meta["settled"], "already settled")
        self._settle(ctx)
        return True

    def _settle(self, ctx: CallContext) -> None:
        ctx.require(not self.meta["settled"], "already settled")
        depositors = [p for p in self.plist if self.deposits.get(p, False)]
        voters = [p for p in depositors if self.voted.get(p, False)]
        slashed = [p for p in depositors if not self.voted.get(p, False)]
        if not voters or not slashed:
            # Unanimous success, or unanimous failure: full refunds.
            for party in depositors:
                ctx.call(self, self.token, "transfer", to=party, amount=self.amount)
        else:
            pot = self.amount * len(slashed)
            share, remainder = divmod(pot, len(voters))
            for index, party in enumerate(voters):
                bonus = share + (1 if index < remainder else 0)
                ctx.call(
                    self, self.token, "transfer", to=party, amount=self.amount + bonus
                )
        self.meta["settled"] = True
        ctx.emit(
            self,
            "DepositsSettled",
            deal_id=self.deal_id,
            slashed=tuple(slashed),
            rewarded=tuple(voters),
        )

    # ------------------------------------------------------------------
    # Off-chain inspection
    # ------------------------------------------------------------------
    def peek_settled(self) -> bool:
        """Whether deposits have been distributed (unmetered)."""
        return bool(self.meta.peek("settled"))

    def peek_voted(self) -> set[Address]:
        """Which parties' votes were accepted (unmetered)."""
        return {party for party in self.plist if self.voted.peek(party, False)}
