"""Party state machines.

A :class:`CompliantParty` follows the paper's protocol exactly:

1. **Escrow**: approve and deposit each asset it owns;
2. **Transfer**: submit each step where it is the giver, as soon as
   the step is enabled (its tentative holding covers it);
3. **Validation**: once every asset's tentative state matches the
   deal's projected commit state, the party is satisfied;
4. **Commit** (timelock): send a signed commit vote to the escrow
   contracts of its *incoming* assets; monitor its *outgoing* assets'
   contracts and forward newly observed votes (path-extended) to its
   incoming contracts; schedule refunds past the terminal timeout.
   (§5: this is the incentive-minimal behaviour; the
   ``altruistic_votes`` ablation sends votes everywhere directly.)
5. **Commit** (CBC): publish a commit vote on the CBC; when the CBC
   shows a decisive outcome, extract a proof and settle the escrow
   contracts it cares about.  If the deal drags past its patience, or
   validation fails, vote abort (after the mandatory ≥ Δ wait if a
   commit vote was already cast).

Deviating strategies (package :mod:`repro.adversary`) subclass this
and override the small ``decide_*`` hooks, so every attack shares the
compliant plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.consensus.bft import DealStatus, LogEntry
from repro.chain.tx import Transaction
from repro.core.config import ProofKind, ProtocolConfig, ProtocolKind
from repro.core.deal import Asset, DealSpec, TransferStep
from repro.core.escrow import EscrowState
from repro.core.proofs import BlockProof, StatusProof
from repro.crypto.keys import Address, KeyPair
from repro.crypto.pathsig import PathSignature, extend_path_signature, sign_vote

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executor import DealEnvironment


@dataclass
class PartyStats:
    """Per-party activity counters (used by cost/timing analyses)."""

    txs_sent: int = 0
    votes_cast: int = 0
    votes_forwarded: int = 0
    cbc_entries: int = 0
    validated_at: float | None = None
    signatures_produced: int = 0


class CompliantParty:
    """A party that follows the protocol (the paper's "compliant")."""

    def __init__(self, keypair: KeyPair, label: str):
        self.keypair = keypair
        self.label = label
        self.address: Address = keypair.address
        self.stats = PartyStats()
        self.env: "DealEnvironment | None" = None
        self.spec: DealSpec | None = None
        self.config: ProtocolConfig | None = None
        # Protocol progress
        self._deposited: set[str] = set()
        self._submitted_steps: set[int] = set()
        self._validated = False
        self._voted_contracts: set[str] = set()
        self._accepted_votes: dict[str, set[Address]] = {}
        self._known_paths: dict[Address, PathSignature] = {}
        self._voted_cbc = False
        self._commit_vote_time: float | None = None
        self._aborted_cbc = False
        self._settle_submitted: set[str] = set()
        self._refund_submitted: set[str] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        """The party's network endpoint name."""
        return f"party:{self.label}"

    def bind(self, env: "DealEnvironment", spec: DealSpec, config: ProtocolConfig) -> None:
        """Attach the party to a deal environment before the run."""
        self.env = env
        self.spec = spec
        self.config = config
        env.network.register(self.endpoint, self.on_message)

    # Derived role sets --------------------------------------------------
    def my_assets(self) -> list[Asset]:
        """Assets this party escrows."""
        return [asset for asset in self.spec.assets if asset.owner == self.address]

    def incoming_asset_ids(self) -> list[str]:
        """Assets on which some step pays this party (its column)."""
        seen: list[str] = []
        for step in self.spec.steps:
            if step.receiver == self.address and step.asset_id not in seen:
                seen.append(step.asset_id)
        return seen

    def outgoing_asset_ids(self) -> list[str]:
        """Assets on which some step debits this party (its row)."""
        seen: list[str] = []
        for step in self.spec.steps:
            if step.giver == self.address and step.asset_id not in seen:
                seen.append(step.asset_id)
        return seen

    def my_steps(self) -> list[tuple[int, TransferStep]]:
        """The transfer steps this party must perform, with indices."""
        return [
            (index, step)
            for index, step in enumerate(self.spec.steps)
            if step.giver == self.address
        ]

    # ------------------------------------------------------------------
    # Deviation hooks (compliant defaults)
    # ------------------------------------------------------------------
    def decide_deposit(self, asset: Asset) -> bool:
        """Whether to escrow ``asset`` (deviators may refuse)."""
        return True

    def decide_transfer(self, step: TransferStep) -> bool:
        """Whether to perform ``step`` (deviators may refuse)."""
        return True

    def decide_validate(self) -> bool:
        """Extra validation veto (deviators/unsatisfied parties refuse)."""
        return True

    def decide_vote(self) -> bool:
        """Whether to cast a commit vote after successful validation."""
        return True

    def decide_forward(self, voter: Address, to_asset_id: str) -> bool:
        """Whether to forward ``voter``'s vote to an incoming contract."""
        return True

    def decide_settle(self, asset_id: str) -> bool:
        """Whether to submit claims/refunds for ``asset_id`` (CBC)."""
        return True

    def is_active(self) -> bool:
        """Deviators may simulate a local crash by returning False."""
        return True

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def send_tx(self, chain_id: str, contract: str, method: str, phase: str, **args) -> None:
        """Submit a transaction to ``chain_id`` over the network."""
        tx = Transaction(
            sender=self.address, contract=contract, method=method, args=args, phase=phase
        )
        self.stats.txs_sent += 1
        self.env.network.send(self.endpoint, f"chain:{chain_id}", ("tx", tx))

    def send_cbc_entry(self, entry: LogEntry) -> None:
        """Submit a log entry to the CBC over the network."""
        self.stats.cbc_entries += 1
        self.env.network.send(self.endpoint, "cbc", ("entry", entry))

    def schedule(self, delay: float, callback, label: str = "") -> None:
        """Set a local timer (fires regardless of network state)."""
        self.env.simulator.schedule(delay, callback, label=f"{self.label}/{label}")

    def on_message(self, message) -> None:
        """Network delivery entry point."""
        if not self.is_active():
            return
        payload = message.payload
        kind = payload[0]
        if kind == "block":
            _, chain_id, block = payload
            self._on_chain_block(chain_id, block)
        elif kind == "cbc_block":
            self._on_cbc_block(payload[1])

    # ------------------------------------------------------------------
    # Phase 1-2: escrow and transfers
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Kick off the party's participation (scheduled by executor)."""
        if not self.is_active():
            return
        for asset in self.my_assets():
            if not self.decide_deposit(asset):
                continue
            escrow_name = self.spec.escrow_contract_name(asset.asset_id)
            escrow = self.env.escrows[asset.asset_id]
            if asset.fungible:
                self.send_tx(
                    asset.chain_id,
                    asset.token,
                    "approve",
                    phase="escrow",
                    spender=escrow.address,
                    amount=asset.amount,
                )
            else:
                for token_id in asset.token_ids:
                    self.send_tx(
                        asset.chain_id,
                        asset.token,
                        "approve",
                        phase="escrow",
                        spender=escrow.address,
                        token_id=token_id,
                    )
            self.send_tx(asset.chain_id, escrow_name, "deposit", phase="escrow")
        if self.config.kind is ProtocolKind.TIMELOCK:
            self._schedule_timelock_refunds()
        else:
            self.schedule(self.config.patience, self._on_patience_expired, "patience")
        self._try_progress()

    def _on_chain_block(self, chain_id: str, block) -> None:
        for receipt in block.receipts:
            for event in receipt.events:
                self._on_event(chain_id, event)
        self._try_progress()

    def _on_event(self, chain_id: str, event) -> None:
        if event.name == "VoteAccepted":
            self._note_vote(event.contract, event.fields["voter"], event.fields["path"])

    def _try_progress(self) -> None:
        """Advance transfers, validation, and voting as far as possible."""
        if not self.is_active():
            return
        self._submit_enabled_steps()
        if not self._validated and self._tentative_state_final():
            if self.decide_validate():
                self._validated = True
                self.stats.validated_at = self.env.simulator.now
                self._cast_votes()
            elif self.config.kind is not ProtocolKind.TIMELOCK:
                # Validation failed: a CBC party votes abort outright.
                self._vote_abort_cbc()
        if self.config.kind is not ProtocolKind.TIMELOCK:
            self._try_settle_cbc()

    def _submit_enabled_steps(self) -> None:
        for index, step in self.my_steps():
            if index in self._submitted_steps:
                continue
            if not self._step_enabled(step):
                continue
            if not self.decide_transfer(step):
                continue
            asset = self.spec.asset(step.asset_id)
            escrow_name = self.spec.escrow_contract_name(step.asset_id)
            self._submitted_steps.add(index)
            self.send_tx(
                asset.chain_id,
                escrow_name,
                "transfer",
                phase="transfer",
                to=step.receiver,
                amount=step.amount,
                token_ids=step.token_ids,
            )

    def _step_enabled(self, step: TransferStep) -> bool:
        escrow = self.env.escrows[step.asset_id]
        if not escrow.peek_deposited():
            return False
        holding = escrow.peek_commit_holding(self.address)
        asset = self.spec.asset(step.asset_id)
        if asset.fungible:
            # Reserve for earlier unexecuted steps of mine on this asset.
            pending = sum(
                other.amount
                for index, other in self.my_steps()
                if other.asset_id == step.asset_id
                and index in self._submitted_steps
                and not self._step_applied(other)
            )
            return holding - pending >= step.amount
        return set(step.token_ids) <= set(holding)

    def _step_applied(self, step: TransferStep) -> bool:
        """Best-effort check whether a submitted step has executed."""
        escrow = self.env.escrows[step.asset_id]
        asset = self.spec.asset(step.asset_id)
        if not asset.fungible:
            return not (set(step.token_ids) <= set(escrow.peek_commit_holding(self.address)))
        return False  # conservative for fungible: keep the reservation

    def _tentative_state_final(self) -> bool:
        """Whether every asset's C-map matches the deal's projection."""
        projected = self.spec.final_commit_holdings()
        for asset in self.spec.assets:
            escrow = self.env.escrows[asset.asset_id]
            if not escrow.peek_deposited():
                return False
            if escrow.peek_state() is not EscrowState.ACTIVE:
                continue
            for party in self.spec.parties:
                expected = projected[asset.asset_id].get(party)
                actual = escrow.peek_commit_holding(party)
                if asset.fungible:
                    if (expected or 0) != actual:
                        return False
                else:
                    if set(expected or set()) != set(actual):
                        return False
        if self.config.kind is ProtocolKind.CBC and self.env.cbc is not None:
            # CBC parties also check the recorded startDeal (§6 escrow
            # phase: "properly escrowed with the correct plist and h").
            start = self.env.cbc.definitive_start_hash(self.spec.deal_id)
            if start != self.env.start_hash:
                return False
        return True

    # ------------------------------------------------------------------
    # Phase 4 (timelock): voting and forwarding
    # ------------------------------------------------------------------
    def _cast_votes(self) -> None:
        if not self.decide_vote():
            return
        if self.config.kind is ProtocolKind.TIMELOCK:
            self._cast_timelock_votes()
        else:
            self._vote_commit_cbc()

    def _cast_timelock_votes(self) -> None:
        path = sign_vote(self.keypair, self.spec.deal_id)
        self.stats.signatures_produced += 1
        self._known_paths[self.address] = path
        if self.config.altruistic_votes:
            targets = [asset.asset_id for asset in self.spec.assets]
        else:
            targets = self.incoming_asset_ids()
        for asset_id in targets:
            self._send_vote(asset_id, path)

    def _send_vote(self, asset_id: str, path: PathSignature) -> None:
        asset = self.spec.asset(asset_id)
        escrow_name = self.spec.escrow_contract_name(asset_id)
        key = (escrow_name, path.voter)
        if key in self._voted_contracts:
            return
        self._voted_contracts.add(key)
        self.stats.votes_cast += 1
        self.send_tx(asset.chain_id, escrow_name, "commit", phase="commit", path=path)

    def _note_vote(self, contract_name: str, voter: Address, path: PathSignature) -> None:
        """React to a VoteAccepted event somewhere in the deal."""
        self._accepted_votes.setdefault(contract_name, set()).add(voter)
        self._voted_contracts.add((contract_name, voter))
        if self.config.kind is not ProtocolKind.TIMELOCK:
            return
        if voter == self.address:
            return
        # Forward votes observed on my outgoing contracts to my
        # incoming contracts that have not accepted them yet (§5).
        outgoing_contracts = {
            self.spec.escrow_contract_name(asset_id)
            for asset_id in self.outgoing_asset_ids()
        }
        if self.config.altruistic_votes:
            outgoing_contracts.add(contract_name)
        if contract_name not in outgoing_contracts:
            return
        if not self._validated:
            return
        extended = extend_path_signature(path, self.keypair)
        self.stats.signatures_produced += 1
        for asset_id in self.incoming_asset_ids():
            target = self.spec.escrow_contract_name(asset_id)
            if voter in self._accepted_votes.get(target, set()):
                continue
            if (target, voter) in self._voted_contracts:
                continue
            if not self.decide_forward(voter, asset_id):
                continue
            self.stats.votes_forwarded += 1
            self._voted_contracts.add((target, voter))
            asset = self.spec.asset(asset_id)
            self.send_tx(
                asset.chain_id, target, "commit", phase="commit", path=extended
            )

    def _schedule_timelock_refunds(self) -> None:
        """Arrange timeout refunds for every escrow in the deal.

        The refund is permissionless (anyone may poke a timed-out
        contract), so a compliant party covers *all* assets, not only
        its own — otherwise an owner silenced by a DoS window (§5.3)
        would leave its escrow stranded.  Attempts are retried a few
        times in case the party's own transactions are being dropped.
        """
        deadline = self.config.t0 + len(self.spec.parties) * self.config.delta
        # A small slack past the deadline so the chain clock
        # (block-grid time) has certainly crossed it.
        first_attempt = deadline + 2 * self.config.delta
        retry_interval = 4 * self.config.delta
        max_attempts = 8

        def attempt(asset, attempts_left):
            if not self.is_active():
                return
            current = self.env.escrows[asset.asset_id]
            if current.peek_state() is not EscrowState.ACTIVE:
                return
            self.send_tx(
                asset.chain_id,
                self.spec.escrow_contract_name(asset.asset_id),
                "refund",
                phase="abort",
            )
            if attempts_left > 1:
                self.schedule(
                    retry_interval,
                    lambda: attempt(asset, attempts_left - 1),
                    "refund-retry",
                )

        for asset in self.spec.assets:
            self.env.simulator.schedule_at(
                first_attempt,
                lambda asset=asset: attempt(asset, max_attempts),
                label=f"{self.label}/refund",
            )

    # ------------------------------------------------------------------
    # Phase 4 (CBC): voting, settling, aborting
    # ------------------------------------------------------------------
    def _signed_cbc_vote(self, kind: str):
        """Build a signed vote for whichever CBC flavour is in use."""
        if self.config.kind is ProtocolKind.CBC_POW:
            from repro.consensus.pow_log import PowLogEntry

            entry = PowLogEntry(kind=kind, deal_id=self.spec.deal_id, party=self.address)
            return PowLogEntry(
                kind=entry.kind,
                deal_id=entry.deal_id,
                party=entry.party,
                signature=self.keypair.sign(entry.payload()),
            )
        entry = LogEntry(
            kind=kind,
            deal_id=self.spec.deal_id,
            party=self.address,
            plist=self.spec.parties,
            start_hash=self.env.start_hash,
        )
        return LogEntry(
            kind=entry.kind,
            deal_id=entry.deal_id,
            party=entry.party,
            plist=entry.plist,
            start_hash=entry.start_hash,
            signature=self.keypair.sign(entry.message()),
        )

    def _vote_commit_cbc(self) -> None:
        if self._voted_cbc or self._aborted_cbc:
            return
        self._voted_cbc = True
        self._commit_vote_time = self.env.simulator.now
        self.stats.votes_cast += 1
        self.stats.signatures_produced += 1
        self.send_cbc_entry(self._signed_cbc_vote("commit"))

    def _vote_abort_cbc(self) -> None:
        if self._aborted_cbc:
            return
        self._aborted_cbc = True
        self.stats.signatures_produced += 1
        self.send_cbc_entry(self._signed_cbc_vote("abort"))

    def _cbc_status(self) -> DealStatus:
        """The shared log's deal status (whichever flavour is wired)."""
        if self.config.kind is ProtocolKind.CBC_POW:
            if self.env.pow_log is None:
                return DealStatus.UNKNOWN
            return self.env.pow_log.deal_status(self.spec.deal_id)
        if self.env.cbc is None:
            return DealStatus.UNKNOWN
        return self.env.cbc.deal_status(self.spec.deal_id, self.env.start_hash)

    def _on_patience_expired(self) -> None:
        """Weak liveness: abort if the deal is dragging (§6)."""
        if not self.is_active():
            return
        status = self._cbc_status()
        if status in (DealStatus.COMMITTED, DealStatus.ABORTED):
            return
        if self._voted_cbc and self._commit_vote_time is not None:
            elapsed = self.env.simulator.now - self._commit_vote_time
            wait = self.config.effective_rescind_wait
            if elapsed < wait:
                self.schedule(wait - elapsed, self._on_patience_expired, "rescind-wait")
                return
        self._vote_abort_cbc()

    def _on_cbc_block(self, block) -> None:
        if not self.is_active():
            return
        self._try_progress()

    def _try_settle_cbc(self) -> None:
        if self.env.cbc is None and self.env.pow_log is None:
            return
        status = self._cbc_status()
        if self.config.kind is ProtocolKind.CBC_POW and status in (
            DealStatus.COMMITTED,
            DealStatus.ABORTED,
        ):
            # PoW proofs are only worth presenting once the decisive
            # block is buried deep enough for the contract to accept.
            depth = self.env.pow_log.confirmations(self.spec.deal_id)
            if depth is None or depth < self.config.pow_confirmations:
                return
        if status is DealStatus.COMMITTED:
            method = "commit"
            # Most motivated: my incoming assets first.
            priority = self.incoming_asset_ids()
        elif status is DealStatus.ABORTED:
            method = "abort"
            priority = [asset.asset_id for asset in self.my_assets()]
        else:
            return
        # Settle the motivated assets, then sweep the rest: the deal
        # is decided everywhere, and leaving an escrow for a crashed
        # counterparty to settle would strand it (weak liveness).
        remaining = [
            asset.asset_id for asset in self.spec.assets
            if asset.asset_id not in priority
        ]
        for asset_id in priority + remaining:
            self._settle_asset(asset_id, method)

    def _settle_asset(self, asset_id: str, method: str) -> None:
        if asset_id in self._settle_submitted:
            return
        if not self.decide_settle(asset_id):
            return
        escrow = self.env.escrows[asset_id]
        if escrow.peek_state() is not EscrowState.ACTIVE:
            return
        proof = self._build_proof(method)
        if proof is None:
            return
        self._settle_submitted.add(asset_id)
        asset = self.spec.asset(asset_id)
        phase = "commit" if method == "commit" else "abort"
        self.send_tx(
            asset.chain_id,
            self.spec.escrow_contract_name(asset_id),
            method,
            phase=phase,
            proof=proof,
        )

    def _build_proof(self, method: str):
        """Fetch a proof from the CBC (an off-chain request to validators)."""
        cbc = self.env.cbc
        if self.config.kind is ProtocolKind.CBC_POW:
            if self.env.pow_log is None:
                return None
            proof = self.env.pow_log.proof(self.spec.deal_id)
            if proof is None:
                return None
            wanted = DealStatus.COMMITTED if method == "commit" else DealStatus.ABORTED
            return proof if proof.claimed_status is wanted else None
        if self.config.proof_kind is ProofKind.STATUS_CERTIFICATE:
            certificate = cbc.status_certificate(self.spec.deal_id)
            if certificate is None:
                return None
            return StatusProof(certificate=certificate, handovers=cbc.handovers)
        blocks = cbc.block_proof(self.spec.deal_id)
        if blocks is None:
            return None
        return BlockProof(blocks=blocks, handovers=cbc.handovers)
