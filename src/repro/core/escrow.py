"""The generic EscrowManager contract (paper Figure 3).

One escrow contract is published per (deal, asset) on the asset's home
chain.  It implements the two §4 operations:

* **escrow** (here ``deposit``): the owner transfers the asset *to the
  contract* (the contract becomes the on-chain owner — that is what
  prevents double-spending), while the C- and A-maps both record the
  depositor;
* **tentative transfer**: moves C-map ownership between parties
  without touching the chain-level owner (still the contract).

Termination is delegated to subclasses: the timelock contract releases
when it has accepted a commit vote from every party (Figure 5), the
CBC contract when presented a valid proof (Figure 6).  ``_release``
pays every C-map owner; ``_refund`` pays every A-map owner (the
original depositors).

Gas shape (checked by tests): a fungible ``deposit`` costs exactly the
four storage writes §7.1 counts — two in the token's ``transfer_from``
plus the ``escrow`` and ``on_commit`` map updates.
"""

from __future__ import annotations

from enum import Enum

from repro.chain.contracts import CallContext, Contract
from repro.core.deal import Asset
from repro.crypto.keys import Address


class EscrowState(Enum):
    """Lifecycle of an escrow contract."""

    ACTIVE = "active"
    RELEASED = "released"
    REFUNDED = "refunded"


class EscrowManager(Contract):
    """Escrow + tentative-transfer bookkeeping for one asset."""

    EXPORTS = ("deposit", "transfer")

    def __init__(self, name: str, deal_id: bytes, plist: tuple[Address, ...], asset: Asset):
        super().__init__(name)
        self.deal_id = deal_id
        self.plist = tuple(plist)
        self.asset = asset
        # Figure 3's two maps.  For non-fungible assets the same maps
        # hold token_id -> owner instead of owner -> amount.
        self.escrow_map = self.storage("escrow")
        self.on_commit = self.storage("onCommit")
        self.meta = self.storage("meta")
        self.meta["state"] = EscrowState.ACTIVE
        self.meta["deposited"] = False

    # ------------------------------------------------------------------
    # Figure 3: escrow
    # ------------------------------------------------------------------
    def deposit(self, ctx: CallContext) -> bool:
        """Pull the asset from the caller into escrow.

        The caller must be the asset's designated owner (a plist
        member) and must have approved this contract on the token.
        """
        ctx.require(ctx.sender in self.plist, "sender not in plist")
        ctx.require(ctx.sender == self.asset.owner, "sender does not own this asset")
        ctx.require(not self.meta["deposited"], "already escrowed")
        # A deposit arriving after the escrow terminated (e.g. a
        # timeout refund fired on the still-empty contract while the
        # deposit was delayed in the network) must bounce — otherwise
        # the asset would be trapped in a dead contract forever.
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "escrow not active")
        if self.asset.fungible:
            ctx.call(
                self,
                self.asset.token,
                "transfer_from",
                owner=ctx.sender,
                to=self.address,
                amount=self.asset.amount,
            )
            self.escrow_map[ctx.sender] = self.asset.amount
            self.on_commit[ctx.sender] = self.asset.amount
        else:
            for token_id in self.asset.token_ids:
                ctx.call(
                    self,
                    self.asset.token,
                    "transfer_from",
                    owner=ctx.sender,
                    to=self.address,
                    token_id=token_id,
                )
                self.escrow_map[token_id] = ctx.sender
                self.on_commit[token_id] = ctx.sender
        self.meta["deposited"] = True
        ctx.emit(self, "Deposited", deal_id=self.deal_id, owner=ctx.sender)
        return True

    # ------------------------------------------------------------------
    # Figure 3: tentative transfer
    # ------------------------------------------------------------------
    def transfer(
        self,
        ctx: CallContext,
        to: Address,
        amount: int = 0,
        token_ids: tuple[str, ...] = (),
    ) -> bool:
        """Tentatively transfer escrowed value from the caller to ``to``."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "escrow not active")
        ctx.require(self.meta["deposited"], "asset not escrowed yet")
        ctx.require(to in self.plist, "recipient not in plist")
        if self.asset.fungible:
            ctx.require(amount > 0 and not token_ids, "fungible transfer needs amount")
            held = self.on_commit.get(ctx.sender, 0)
            ctx.require(held >= amount, "insufficient tentative balance")
            self.on_commit[ctx.sender] = held - amount
            self.on_commit[to] = self.on_commit.get(to, 0) + amount
        else:
            ctx.require(bool(token_ids) and not amount, "nft transfer needs token ids")
            for token_id in token_ids:
                ctx.require(
                    self.on_commit.get(token_id) == ctx.sender,
                    f"token {token_id!r} not tentatively owned by sender",
                )
                self.on_commit[token_id] = to
        ctx.emit(
            self,
            "TentativeTransfer",
            deal_id=self.deal_id,
            giver=ctx.sender,
            receiver=to,
            amount=amount,
            token_ids=tuple(token_ids),
        )
        return True

    # ------------------------------------------------------------------
    # Termination (invoked by subclasses)
    # ------------------------------------------------------------------
    def _release(self, ctx: CallContext) -> None:
        """Pay out per the C-map; the deal committed at this asset."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        if self.meta["deposited"]:
            if self.asset.fungible:
                for owner, amount in self.on_commit.items():
                    if amount > 0:
                        ctx.call(self, self.asset.token, "transfer", to=owner, amount=amount)
            else:
                for token_id, owner in self.on_commit.items():
                    ctx.call(self, self.asset.token, "transfer", to=owner, token_id=token_id)
        self.meta["state"] = EscrowState.RELEASED
        ctx.emit(self, "Released", deal_id=self.deal_id)

    def _refund(self, ctx: CallContext) -> None:
        """Pay out per the A-map; the deal aborted at this asset."""
        ctx.require(self.meta["state"] is EscrowState.ACTIVE, "already terminated")
        if self.meta["deposited"]:
            if self.asset.fungible:
                for owner, amount in self.escrow_map.items():
                    if amount > 0:
                        ctx.call(self, self.asset.token, "transfer", to=owner, amount=amount)
            else:
                for token_id, owner in self.escrow_map.items():
                    ctx.call(self, self.asset.token, "transfer", to=owner, token_id=token_id)
        self.meta["state"] = EscrowState.REFUNDED
        ctx.emit(self, "Refunded", deal_id=self.deal_id)

    # ------------------------------------------------------------------
    # Off-chain inspection (parties' monitoring, tests)
    # ------------------------------------------------------------------
    def peek_state(self) -> EscrowState:
        """Current lifecycle state (unmetered)."""
        return self.meta.peek("state")

    def peek_deposited(self) -> bool:
        """Whether the asset has been escrowed (unmetered)."""
        return bool(self.meta.peek("deposited"))

    def peek_commit_holding(self, party: Address) -> object:
        """What ``party`` gets if the deal commits here (unmetered)."""
        if self.asset.fungible:
            return self.on_commit.peek(party, 0)
        return {
            token_id
            for token_id in self.asset.token_ids
            if self.on_commit.peek(token_id) == party
        }
