"""Consensus substrates for the certified blockchain (CBC).

The CBC protocol (paper §6) needs a shared log whose entries can be
*proven* to passive contracts on other chains.  Two realizations:

* :mod:`repro.consensus.bft` — a BFT-certified log: every block is
  vouched for by ≥ 2f+1 of 3f+1 validators; certificates are final.
  Supports validator reconfiguration and the status-certificate
  optimization of §6.2.
* :mod:`repro.consensus.pow` — a Nakamoto (proof-of-work) log without
  finality, used to reproduce the §6.2 fake-proof-of-abort attack and
  the confirmation-depth trade-off.
"""

from repro.consensus.bft import (
    CertifiedBlockchain,
    CbcBlock,
    LogEntry,
    StatusCertificate,
)
from repro.consensus.validators import ValidatorSet
from repro.consensus.pow import MiningRace, PowChain, PowProof, PowVoteProof
from repro.consensus.pow_log import PowCertifiedLog, PowLogEntry

__all__ = [
    "CbcBlock",
    "CertifiedBlockchain",
    "LogEntry",
    "MiningRace",
    "PowCertifiedLog",
    "PowChain",
    "PowLogEntry",
    "PowProof",
    "PowVoteProof",
    "StatusCertificate",
    "ValidatorSet",
]
