"""Proof-of-work (Nakamoto) consensus simulation.

Used to reproduce the §6.2 analysis of a PoW-backed CBC: such a chain
lacks finality, so a "proof" of commit or abort is a block plus some
number of confirmation blocks — and a sufficiently lucky (or
well-resourced) attacker can privately mine a contradictory proof.

Two layers:

* :class:`PowChain` — an append-only PoW log whose proofs are block
  suffixes; verification checks linkage and confirmation depth, *not*
  which fork is canonical (a passive contract cannot know that —
  exactly the weakness the paper describes);
* :class:`MiningRace` — a seeded stochastic race between the honest
  network (hash power ``1 - alpha``) and a private attacker
  (``alpha``), used by :mod:`repro.adversary.mining` to measure the
  fake-proof success rate as a function of confirmation depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crypto.hashing import hash_concat
from repro.errors import ConsensusError
from repro.sim.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.consensus.bft import DealStatus


@dataclass(frozen=True)
class PowBlock:
    """A mined block carrying opaque entries."""

    height: int
    parent_hash: bytes
    entries: tuple[bytes, ...]
    miner: str
    nonce: int

    def hash(self) -> bytes:
        """The block hash, binding parent, entries, miner, and nonce."""
        return hash_concat(
            b"repro/pow-block",
            self.height.to_bytes(8, "big"),
            self.parent_hash,
            *self.entries,
            self.miner.encode("utf-8"),
            self.nonce.to_bytes(8, "big"),
        )


@dataclass(frozen=True)
class PowProof:
    """A PoW 'proof': a linked block sequence ending in ``confirmations``
    blocks after the block containing the decisive entry."""

    blocks: tuple[PowBlock, ...]
    decisive_index: int

    @property
    def confirmations(self) -> int:
        """How many blocks follow the decisive one."""
        return len(self.blocks) - 1 - self.decisive_index

    def verify(self, min_confirmations: int) -> bool:
        """Check linkage and depth.

        Crucially, this is all a passive contract *can* check for a
        PoW chain: it cannot tell whether these blocks are on the
        canonical fork.  A privately mined suffix therefore verifies —
        reproducing the paper's fake-proof scenario.
        """
        if not self.blocks:
            return False
        if not 0 <= self.decisive_index < len(self.blocks):
            return False
        for previous, current in zip(self.blocks, self.blocks[1:]):
            if current.parent_hash != previous.hash():
                return False
            if current.height != previous.height + 1:
                return False
        return self.confirmations >= min_confirmations


@dataclass(frozen=True)
class PowVoteProof:
    """A PoW block suffix whose decisive block contains the claimed vote."""

    proof: PowProof
    claimed_status: "DealStatus"


def encode_pow_vote(deal_id: bytes, kind: str, party_value: bytes) -> bytes:
    """Canonical PoW-CBC entry encoding for a commit/abort vote."""
    return hash_concat(b"repro/pow-vote", deal_id, kind.encode("utf-8"), party_value)


class PowChain:
    """An append-only sequence of mined blocks (one miner's view)."""

    def __init__(self, genesis_tag: str = "pow"):
        self._blocks: list[PowBlock] = [
            PowBlock(
                height=0,
                parent_hash=b"\x00" * 32,
                entries=(),
                miner="genesis",
                nonce=0,
            )
        ]
        self._tag = genesis_tag

    @classmethod
    def forked_from(cls, other: "PowChain", height: int) -> "PowChain":
        """Create a private fork sharing ``other``'s prefix up to ``height``."""
        if height > other.height:
            raise ConsensusError("cannot fork above the tip")
        fork = cls(genesis_tag=other._tag + "/fork")
        fork._blocks = list(other._blocks[: height + 1])
        return fork

    @property
    def height(self) -> int:
        """The tip height (genesis = 0)."""
        return self._blocks[-1].height

    @property
    def blocks(self) -> tuple[PowBlock, ...]:
        """All blocks, genesis first."""
        return tuple(self._blocks)

    def mine(self, entries: tuple[bytes, ...], miner: str, nonce: int = 0) -> PowBlock:
        """Append a block carrying ``entries``."""
        block = PowBlock(
            height=self.height + 1,
            parent_hash=self._blocks[-1].hash(),
            entries=entries,
            miner=miner,
            nonce=nonce,
        )
        self._blocks.append(block)
        return block

    def find_entry(self, entry: bytes) -> int | None:
        """Return the height of the first block containing ``entry``."""
        for block in self._blocks:
            if entry in block.entries:
                return block.height
        return None

    def proof_for(self, entry: bytes) -> PowProof | None:
        """Build a proof for ``entry`` with all available confirmations."""
        height = self.find_entry(entry)
        if height is None:
            return None
        blocks = tuple(self._blocks[height:])
        return PowProof(blocks=blocks, decisive_index=0)


@dataclass
class MiningRace:
    """A seeded block-discovery race between honest miners and an attacker.

    Each step, the next block is found by the attacker with
    probability ``alpha`` and by the honest network otherwise — the
    standard memoryless approximation of hash-power competition.
    """

    alpha: float
    rng: DeterministicRng

    def __post_init__(self) -> None:
        if not 0 <= self.alpha < 1:
            raise ConsensusError("attacker hash power must be in [0, 1)")

    def next_winner(self) -> str:
        """Return ``"attacker"`` or ``"honest"`` for the next block."""
        if self.rng.random("pow/race") < self.alpha:
            return "attacker"
        return "honest"

    def race(self, honest_target: int, attacker_target: int) -> bool:
        """True iff the attacker mines ``attacker_target`` blocks before
        the honest network mines ``honest_target``.

        The deal gives the attacker a finite window: once the honest
        chain has produced ``honest_target`` blocks the escrow
        deadlines pass and the fake proof is useless.
        """
        honest = 0
        attacker = 0
        while honest < honest_target and attacker < attacker_target:
            if self.next_winner() == "attacker":
                attacker += 1
            else:
                honest += 1
        return attacker >= attacker_target
