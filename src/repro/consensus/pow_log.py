"""A proof-of-work CBC: the §6.2 alternative, runnable end to end.

Where :class:`~repro.consensus.bft.CertifiedBlockchain` certifies each
block with a validator quorum, this log is extended by simulated
honest mining: pending entries are mined into a new block once per
block interval.  There is no finality — a deal's status only becomes
*claimable* once the decisive block has accumulated the confirmation
depth the escrow contracts demand, and (the point of E8) nothing
stops an attacker from privately mining a contradictory suffix.

Deal semantics mirror the BFT CBC: a deal commits when every party's
commit vote is mined before any abort vote; an abort vote mined first
aborts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.bft import DealStatus
from repro.consensus.pow import PowChain, PowProof, PowVoteProof, encode_pow_vote
from repro.crypto.keys import Address, Wallet
from repro.crypto.schnorr import Signature, verify as schnorr_verify
from repro.errors import ConsensusError
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class PowLogEntry:
    """A signed vote destined for the PoW log."""

    kind: str  # "commit" | "abort"
    deal_id: bytes
    party: Address
    signature: Signature | None = None

    def payload(self) -> bytes:
        """The canonical on-chain encoding (what contracts replay)."""
        return encode_pow_vote(self.deal_id, self.kind, self.party.value)


@dataclass
class _PowDealRecord:
    plist: tuple[Address, ...]
    committed: set[Address] = field(default_factory=set)
    status: DealStatus = DealStatus.ACTIVE
    decisive_height: int | None = None


class PowCertifiedLog:
    """The PoW-flavoured shared log for the CBC protocol."""

    def __init__(
        self,
        simulator: Simulator,
        wallet: Wallet,
        block_interval: float = 1.0,
        name: str = "pow-cbc",
    ):
        if block_interval <= 0:
            raise ConsensusError("block interval must be positive")
        self.name = name
        self.simulator = simulator
        self.wallet = wallet
        self.block_interval = block_interval
        self.chain = PowChain(name)
        self._pending: list[PowLogEntry] = []
        self._observers: list = []
        self._block_scheduled = False
        self._deals: dict[bytes, _PowDealRecord] = {}
        self._mining_paused = False

    # ------------------------------------------------------------------
    # Deal registration (the clearing phase announces the plist)
    # ------------------------------------------------------------------
    def register_deal(self, deal_id: bytes, plist: tuple[Address, ...]) -> None:
        """Tell the log about a deal so votes can be validated."""
        if deal_id not in self._deals:
            self._deals[deal_id] = _PowDealRecord(plist=tuple(plist))

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def submit(self, entry: PowLogEntry) -> None:
        """Queue a signed vote for the next mined block."""
        if entry.signature is None:
            return
        message = entry.payload()
        if not self.wallet.verify(entry.party, message, entry.signature):
            return
        record = self._deals.get(entry.deal_id)
        if record is None or entry.party not in record.plist:
            return
        self._pending.append(entry)
        self._ensure_block_scheduled()

    def pause_mining(self) -> None:
        """Halt honest block production (models a mining outage)."""
        self._mining_paused = True

    def resume_mining(self) -> None:
        """Resume honest block production."""
        self._mining_paused = False
        if self._pending:
            self._ensure_block_scheduled()

    def _ensure_block_scheduled(self) -> None:
        if self._block_scheduled or self._mining_paused:
            return
        self._block_scheduled = True
        now = self.simulator.now
        next_boundary = (int(now / self.block_interval) + 1) * self.block_interval
        self.simulator.schedule_at(next_boundary, self._mine_block, label="pow-cbc/mine")

    def _mine_block(self) -> None:
        self._block_scheduled = False
        if self._mining_paused:
            return
        pending, self._pending = self._pending, []
        accepted = [entry for entry in pending if self._apply(entry)]
        payloads = tuple(entry.payload() for entry in accepted)
        block = self.chain.mine(payloads, miner="honest")
        for observer in list(self._observers):
            observer(self, block)
        if self._pending:
            self._ensure_block_scheduled()
        elif self._needs_confirmations():
            # Keep mining empty blocks until every decided deal's
            # decisive block is buried deep enough to be claimable.
            self._ensure_block_scheduled()

    def _needs_confirmations(self, depth: int = 8) -> bool:
        for record in self._deals.values():
            if record.decisive_height is None:
                continue
            if self.chain.height - record.decisive_height < depth:
                return True
        return False

    def _apply(self, entry: PowLogEntry) -> bool:
        record = self._deals[entry.deal_id]
        if record.status is not DealStatus.ACTIVE:
            return True  # recorded, but after the decisive vote
        height = self.chain.height + 1
        if entry.kind == "commit":
            record.committed.add(entry.party)
            if record.committed == set(record.plist):
                record.status = DealStatus.COMMITTED
                record.decisive_height = height
        elif entry.kind == "abort":
            record.status = DealStatus.ABORTED
            record.decisive_height = height
        else:
            return False
        return True

    # ------------------------------------------------------------------
    # Observation and proofs
    # ------------------------------------------------------------------
    def subscribe(self, observer) -> None:
        """Receive each mined block: ``observer(log, block)``."""
        self._observers.append(observer)

    def deal_status(self, deal_id: bytes) -> DealStatus:
        """The log's view of the deal (ignoring confirmation depth)."""
        record = self._deals.get(deal_id)
        return record.status if record else DealStatus.UNKNOWN

    def confirmations(self, deal_id: bytes) -> int | None:
        """Blocks mined after the deal's decisive block."""
        record = self._deals.get(deal_id)
        if record is None or record.decisive_height is None:
            return None
        return self.chain.height - record.decisive_height

    def proof(self, deal_id: bytes) -> PowVoteProof | None:
        """Build the claimable proof for a decided deal.

        The block span starts at the earliest vote needed (for a
        commit, every party's vote must be inside the span) and the
        decisive index points at the block that decided the deal; the
        suffix provides the confirmations.
        """
        record = self._deals.get(deal_id)
        if record is None or record.decisive_height is None:
            return None
        if record.status is DealStatus.COMMITTED:
            needed = {
                encode_pow_vote(deal_id, "commit", party.value)
                for party in record.plist
            }
        else:
            needed = set()  # the decisive abort block carries the vote
        heights = [self.chain.find_entry(entry) for entry in needed]
        if any(height is None for height in heights):
            return None
        start = min(heights) if heights else record.decisive_height
        blocks = self.chain.blocks[start:]
        return PowVoteProof(
            proof=PowProof(
                blocks=tuple(blocks),
                decisive_index=record.decisive_height - start,
            ),
            claimed_status=record.status,
        )
