"""The BFT certified blockchain (CBC) — the shared log of paper §6.

The CBC records ``startDeal``, ``commit``, and ``abort`` entries in a
total order.  Every block carries a quorum certificate (≥ 2f+1
validator signatures over the block hash), so any party can extract a
**proof** that particular votes were recorded in a particular order
and present it to a passive escrow contract on another chain:

* a *block proof* is the certified block subsequence from the deal's
  ``startDeal`` to its decisive vote (the straightforward approach);
* a *status certificate* is a single quorum-signed statement of the
  deal's outcome (the optimization of §6.2);
* after ``k`` reconfigurations, either proof is prefixed by ``k``
  handover certificates so a contract that knows only the initial
  validators can still verify.

Deal semantics on the log (§6.2): a deal **commits** when every party
in its plist has a commit vote recorded before any abort vote; it
**aborts** when some abort vote is recorded before that point.  A
party may rescind an earlier commit vote by voting abort (only
decisive if the all-commit point has not been reached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.consensus.validators import (
    HandoverCertificate,
    QuorumSignature,
    ValidatorSet,
    make_handover,
)
from repro.crypto.hashing import hash_concat
from repro.crypto.keys import Address, Wallet
from repro.crypto.schnorr import (
    Signature,
    batch_verify as schnorr_batch_verify,
    verify as schnorr_verify,
)
from repro.errors import ConsensusError
from repro.sim.simulator import Simulator


class DealStatus(Enum):
    """The CBC-side status of a deal."""

    UNKNOWN = "unknown"
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(frozen=True)
class LogEntry:
    """One entry on the CBC.

    ``kind`` is one of ``startDeal``, ``commit``, ``abort``.  Votes are
    signed by their voter; the CBC verifies the signature before
    recording (a malformed vote is simply not recorded).
    """

    kind: str
    deal_id: bytes
    party: Address
    plist: tuple[Address, ...] = ()
    start_hash: bytes = b""
    signature: Signature | None = None

    def message(self) -> bytes:
        """Canonical signing bytes (binds kind, deal, party, plist)."""
        return hash_concat(
            b"repro/cbc-entry",
            self.kind.encode("utf-8"),
            self.deal_id,
            self.party.value,
            *[address.value for address in self.plist],
            self.start_hash,
        )

    def encode(self) -> bytes:
        """Full byte encoding (for block hashing)."""
        sig = self.signature.to_bytes() if self.signature else b""
        return hash_concat(self.message(), sig)


@dataclass(frozen=True)
class CbcBlock:
    """A certified CBC block: entries + quorum certificate."""

    height: int
    parent_hash: bytes
    entries: tuple[LogEntry, ...]
    epoch: int
    timestamp: float
    certificate: tuple[QuorumSignature, ...] = ()

    def body_hash(self) -> bytes:
        """Hash of everything the certificate signs."""
        return hash_concat(
            b"repro/cbc-block",
            self.height.to_bytes(8, "big"),
            self.parent_hash,
            self.epoch.to_bytes(8, "big"),
            *[entry.encode() for entry in self.entries],
        )


@dataclass(frozen=True)
class StatusCertificate:
    """A quorum-signed statement of a deal's status (§6.2 optimization)."""

    deal_id: bytes
    start_hash: bytes
    status: DealStatus
    epoch: int
    signatures: tuple[QuorumSignature, ...]

    @staticmethod
    def message(deal_id: bytes, start_hash: bytes, status: DealStatus, epoch: int) -> bytes:
        """Canonical signing bytes for a status statement."""
        return hash_concat(
            b"repro/cbc-status",
            deal_id,
            start_hash,
            status.value.encode("utf-8"),
            epoch.to_bytes(8, "big"),
        )


@dataclass
class _DealRecord:
    plist: tuple[Address, ...]
    start_hash: bytes
    start_height: int
    committed: set[Address] = field(default_factory=set)
    status: DealStatus = DealStatus.ACTIVE
    decisive_height: int | None = None


class CertifiedBlockchain:
    """The CBC: an actor producing certified blocks of deal entries."""

    def __init__(
        self,
        simulator: Simulator,
        validators: ValidatorSet,
        wallet: Wallet,
        block_interval: float = 1.0,
        name: str = "cbc",
    ):
        if block_interval <= 0:
            raise ConsensusError("block interval must be positive")
        self.name = name
        self.simulator = simulator
        self.wallet = wallet
        self.block_interval = block_interval
        self._validators = validators
        self._initial_public_keys = validators.public_keys()
        self._handovers: list[HandoverCertificate] = []
        # (submit_time, entry) pairs; signatures checked at production.
        self._pending: list[tuple[float, LogEntry]] = []
        self._blocks: list[CbcBlock] = []
        self._observers: list = []
        self._block_scheduled = False
        self._deals: dict[tuple[bytes, bytes], _DealRecord] = {}
        self._starts: dict[bytes, bytes] = {}  # deal_id -> definitive start hash
        self.censored_deals: set[bytes] = set()
        genesis = CbcBlock(
            height=0,
            parent_hash=b"\x00" * 32,
            entries=(),
            epoch=validators.epoch,
            timestamp=simulator.now,
        )
        certificate = validators.quorum_sign(genesis.body_hash())
        self._blocks.append(
            CbcBlock(
                height=0,
                parent_hash=b"\x00" * 32,
                entries=(),
                epoch=validators.epoch,
                timestamp=simulator.now,
                certificate=certificate,
            )
        )

    # ------------------------------------------------------------------
    # Validator management
    # ------------------------------------------------------------------
    @property
    def validators(self) -> ValidatorSet:
        """The current validator set."""
        return self._validators

    @property
    def initial_public_keys(self):
        """Epoch-0 public keys — what escrow contracts are given."""
        return self._initial_public_keys

    @property
    def handovers(self) -> tuple[HandoverCertificate, ...]:
        """All reconfiguration certificates, oldest first."""
        return tuple(self._handovers)

    def reconfigure(self, seed: str = "validators") -> ValidatorSet:
        """Elect a successor validator set, recording a handover."""
        new_set = self._validators.next_epoch(seed=seed)
        self._handovers.append(make_handover(self._validators, new_set))
        self._validators = new_set
        return new_set

    # ------------------------------------------------------------------
    # Log access
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Current block height (genesis = 0)."""
        return self._blocks[-1].height

    @property
    def blocks(self) -> tuple[CbcBlock, ...]:
        """All certified blocks."""
        return tuple(self._blocks)

    def entries(self) -> list[LogEntry]:
        """The full ordered log (concatenated block entries)."""
        ordered: list[LogEntry] = []
        for block in self._blocks:
            ordered.extend(block.entries)
        return ordered

    def subscribe(self, observer) -> None:
        """Receive each new block: ``observer(cbc, block)``."""
        self._observers.append(observer)

    # ------------------------------------------------------------------
    # Entry submission
    # ------------------------------------------------------------------
    def submit(self, entry: LogEntry) -> None:
        """Queue ``entry`` for the next block.

        Entries with invalid signatures are dropped (validators refuse
        them); entries for censored deals are silently ignored — the
        §9 censorship threat, used by fault-injection experiments.

        Cross-block vote aggregation: the signature check is deferred
        to block production, where every entry that arrived during the
        block interval is verified in **one** batched Schnorr check
        (with per-entry fallback isolating any bad vote).  Acceptance
        is only ever observable through the produced blocks, so the
        deferral changes no behavior — a bad-signature entry is still
        never recorded, and blocks exist at exactly the heights and
        times the eager-checking implementation produced them
        (:meth:`_produce_block` replays the eager scheduling rule,
        including the corner where only invalid entries scheduled the
        boundary).
        """
        if entry.deal_id in self.censored_deals:
            return
        if entry.signature is None:
            return
        self._pending.append((self.simulator.now, entry))
        self._ensure_block_scheduled()

    def _verify_pending(self, entries: list[LogEntry]) -> list[LogEntry]:
        """Drop entries whose signatures fail, in one batched check."""
        known = [
            entry for entry in entries if self.wallet.knows(entry.party)
        ]
        if not known:
            return []
        items = [
            (self.wallet.public_key(entry.party), entry.message(), entry.signature)
            for entry in known
        ]
        if schnorr_batch_verify(items):
            return known
        # Some vote in the interval is forged: isolate per entry (the
        # per-signature cache keeps honest repeats cheap).
        return [
            entry
            for entry, (public_key, message, signature) in zip(known, items)
            if schnorr_verify(public_key, message, signature)
        ]

    def _ensure_block_scheduled(self) -> None:
        if self._block_scheduled:
            return
        self._block_scheduled = True
        now = self.simulator.now
        next_boundary = (int(now / self.block_interval) + 1) * self.block_interval
        self.simulator.schedule_at(next_boundary, self._produce_block, label="cbc/block")

    def _produce_block(self) -> None:
        self._block_scheduled = False
        now = self.simulator.now
        pending, self._pending = self._pending, []
        # Eager-scheduling replay: this block exists iff a validly
        # signed entry arrived *before* the boundary (only such an
        # entry would have scheduled it).  Boundary-instant arrivals
        # ride along only when the block legitimately exists — under
        # eager checking they joined an already-scheduled block's
        # pending; without one they scheduled the *next* boundary.
        before = [entry for at, entry in pending if at < now]
        boundary = [entry for at, entry in pending if at >= now]
        valid = self._verify_pending(before)
        if not valid:
            # Every pre-boundary entry was invalidly signed: the eager
            # implementation never scheduled this block.  Re-queue the
            # boundary-instant arrivals for the next one, exactly as
            # their own eager _ensure_block_scheduled would have.
            self._pending = [(now, entry) for entry in boundary]
            if self._pending:
                self._ensure_block_scheduled()
            return
        if boundary:
            valid.extend(self._verify_pending(boundary))
        accepted = [entry for entry in valid if self._apply(entry)]
        body = CbcBlock(
            height=self.height + 1,
            parent_hash=self._blocks[-1].body_hash(),
            entries=tuple(accepted),
            epoch=self._validators.epoch,
            timestamp=self.simulator.now,
        )
        certificate = self._validators.quorum_sign(body.body_hash())
        block = CbcBlock(
            height=body.height,
            parent_hash=body.parent_hash,
            entries=body.entries,
            epoch=body.epoch,
            timestamp=body.timestamp,
            certificate=certificate,
        )
        self._blocks.append(block)
        for observer in list(self._observers):
            observer(self, block)
        if self._pending:
            self._ensure_block_scheduled()

    def _apply(self, entry: LogEntry) -> bool:
        """Update deal state; return whether the entry is recorded."""
        height = self.height + 1
        if entry.kind == "startDeal":
            if not entry.plist or entry.party not in entry.plist:
                return False
            if entry.deal_id in self._starts:
                # Later startDeals are recorded but not definitive.
                return True
            start_hash = entry.message()
            self._starts[entry.deal_id] = start_hash
            self._deals[(entry.deal_id, start_hash)] = _DealRecord(
                plist=entry.plist, start_hash=start_hash, start_height=height
            )
            return True
        if entry.kind not in ("commit", "abort"):
            return False
        record = self._deals.get((entry.deal_id, entry.start_hash))
        if record is None or entry.party not in record.plist:
            return False
        if record.status is not DealStatus.ACTIVE:
            return True  # recorded, but after the decisive vote
        if entry.kind == "commit":
            record.committed.add(entry.party)
            if record.committed == set(record.plist):
                record.status = DealStatus.COMMITTED
                record.decisive_height = height
        else:
            record.status = DealStatus.ABORTED
            record.decisive_height = height
        return True

    # ------------------------------------------------------------------
    # Deal status and proofs
    # ------------------------------------------------------------------
    def definitive_start_hash(self, deal_id: bytes) -> bytes | None:
        """The hash of the earliest recorded startDeal for ``deal_id``."""
        return self._starts.get(deal_id)

    def deal_status(self, deal_id: bytes, start_hash: bytes | None = None) -> DealStatus:
        """The current status of a deal on this log."""
        if start_hash is None:
            start_hash = self._starts.get(deal_id)
        if start_hash is None:
            return DealStatus.UNKNOWN
        record = self._deals.get((deal_id, start_hash))
        return record.status if record is not None else DealStatus.UNKNOWN

    def commit_progress(self, deal_id: bytes) -> set[Address]:
        """Which parties' commit votes are recorded (for monitoring)."""
        start_hash = self._starts.get(deal_id)
        if start_hash is None:
            return set()
        record = self._deals.get((deal_id, start_hash))
        return set(record.committed) if record else set()

    def status_certificate(self, deal_id: bytes) -> StatusCertificate | None:
        """Produce a quorum-signed status statement (§6.2 optimization).

        Returns ``None`` while the deal is still active (there is
        nothing decisive to certify).
        """
        start_hash = self._starts.get(deal_id)
        if start_hash is None:
            return None
        status = self.deal_status(deal_id, start_hash)
        if status not in (DealStatus.COMMITTED, DealStatus.ABORTED):
            return None
        message = StatusCertificate.message(
            deal_id, start_hash, status, self._validators.epoch
        )
        return StatusCertificate(
            deal_id=deal_id,
            start_hash=start_hash,
            status=status,
            epoch=self._validators.epoch,
            signatures=self._validators.quorum_sign(message),
        )

    def block_proof(self, deal_id: bytes) -> tuple[CbcBlock, ...] | None:
        """The certified block subsequence from startDeal to decision.

        The "straightforward approach" of §6.2: the contract replays
        the entries itself.  Returns ``None`` while the deal is active.
        """
        start_hash = self._starts.get(deal_id)
        if start_hash is None:
            return None
        record = self._deals.get((deal_id, start_hash))
        if record is None or record.decisive_height is None:
            return None
        return tuple(
            block
            for block in self._blocks
            if record.start_height <= block.height <= record.decisive_height
        )
