"""BFT validator sets.

A validator set of size ``3f + 1`` tolerates ``f`` Byzantine members;
any ``2f + 1`` signatures constitute a quorum certificate (paper
§6.2).  The simulation holds the validators' keypairs so it can
produce certificates; contracts only ever see public keys.

Reconfiguration: a set can *hand over* to a successor set by signing a
handover statement with a quorum — the certificate-chain proofs in
:mod:`repro.consensus.bft` thread these handovers so a contract that
knows only the initial validators can still check recent certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fastexp import prewarm_base
from repro.crypto.hashing import hash_concat
from repro.crypto.keys import KeyPair
from repro.crypto.schnorr import (
    PublicKey,
    Signature,
    batch_verify as schnorr_batch_verify,
    batch_verify_many as schnorr_batch_verify_many,
)
from repro.errors import ConsensusError


@dataclass(frozen=True)
class QuorumSignature:
    """One validator's contribution to a quorum certificate."""

    public_key: PublicKey
    signature: Signature


class ValidatorSet:
    """``3f + 1`` validators with quorum-signing helpers."""

    def __init__(self, keypairs: list[KeyPair], epoch: int = 0):
        if not keypairs:
            raise ConsensusError("validator set cannot be empty")
        if (len(keypairs) - 1) % 3 != 0:
            raise ConsensusError(
                f"validator set size must be 3f+1, got {len(keypairs)}"
            )
        self._keypairs = list(keypairs)
        self.epoch = epoch
        # A validator's key verifies certificates for the whole run, so
        # its fastexp window table is built now, at set-generation time,
        # instead of lazily inside the first measured verifications
        # (ROADMAP follow-up to the PR 1 crypto engine).  Keypairs are
        # memoized per label, so regenerated sets find warm tables.
        for keypair in self._keypairs:
            prewarm_base(keypair.public_key.point)

    @classmethod
    def generate(cls, f: int, seed: str = "validators", epoch: int = 0) -> "ValidatorSet":
        """Create a fresh set tolerating ``f`` Byzantine validators."""
        if f < 0:
            raise ConsensusError("f must be non-negative")
        size = 3 * f + 1
        keypairs = [
            KeyPair.from_label(f"{seed}/epoch{epoch}/validator{i}") for i in range(size)
        ]
        return cls(keypairs, epoch=epoch)

    @property
    def size(self) -> int:
        """Total validator count, ``3f + 1``."""
        return len(self._keypairs)

    @property
    def f(self) -> int:
        """The Byzantine tolerance ``f``."""
        return (len(self._keypairs) - 1) // 3

    @property
    def quorum(self) -> int:
        """Quorum size, ``2f + 1``."""
        return 2 * self.f + 1

    def public_keys(self) -> tuple[PublicKey, ...]:
        """The validators' public keys (what contracts are told)."""
        return tuple(kp.public_key for kp in self._keypairs)

    def quorum_sign(self, message: bytes) -> tuple[QuorumSignature, ...]:
        """Produce exactly ``2f + 1`` signatures over ``message``.

        The first ``2f + 1`` validators sign — which members
        participate is irrelevant to verification.
        """
        return tuple(
            QuorumSignature(kp.public_key, kp.sign(message))
            for kp in self._keypairs[: self.quorum]
        )

    def next_epoch(self, seed: str = "validators") -> "ValidatorSet":
        """Generate the successor set for a reconfiguration."""
        return ValidatorSet.generate(self.f, seed=seed, epoch=self.epoch + 1)

    def batch_verify(
        self, message: bytes, signatures: tuple[QuorumSignature, ...]
    ) -> bool:
        """Check a quorum certificate over ``message`` in one batch."""
        return batch_verify_quorum(
            self.public_keys(), self.quorum, message, signatures
        )


def quorum_structure_ok(
    valid_keys: tuple[PublicKey, ...],
    quorum: int,
    signatures,
) -> bool:
    """The structural half of a quorum check, shared by every caller.

    Every signer must be a member of ``valid_keys``, no signer may
    appear twice, and at least ``quorum`` signatures must be present —
    the same rules the per-signature replay in
    :mod:`repro.core.proofs` enforces, and the rules the market
    mempool applies before whole-block signature merging.
    """
    entries = list(signatures)
    if len(entries) < quorum:
        return False
    key_set = set(valid_keys)
    seen: set[int] = set()
    for entry in entries:
        if entry.public_key.point in seen:
            return False  # duplicate signer: malformed certificate
        seen.add(entry.public_key.point)
        if entry.public_key not in key_set:
            return False  # only members may vote
    return True


def batch_verify_quorum(
    valid_keys: tuple[PublicKey, ...],
    quorum: int,
    message: bytes,
    signatures,
) -> bool:
    """Batch-verify a quorum certificate: one combined check for all.

    Structure via :func:`quorum_structure_ok`; the cryptographic check
    itself is a single randomized linear combination
    (:func:`repro.crypto.schnorr.batch_verify`) instead of one
    exponentiation pair per signature.

    This is a wall-clock API — gas accounting stays with the caller,
    which still charges the protocol's full per-verification price.
    """
    entries = list(signatures)
    if not quorum_structure_ok(valid_keys, quorum, entries):
        return False
    return schnorr_batch_verify(
        [(entry.public_key, message, entry.signature) for entry in entries]
    )


class VerifyAggregator:
    """Cross-block signature-verification aggregation.

    Several block producers seal at the same simulated instant — every
    market chain's mempool seals on the same half-grid boundary — and
    each seal wants one batched Schnorr check for its block's worth of
    signatures.  Instead of verifying inline, each producer *enqueues*
    its batch here together with a verdict callback; the aggregator
    schedules a single flush **at the same instant** (the simulator
    runs same-time events in scheduling order, so the flush runs after
    every seal at that boundary and strictly before the next block
    executes).  When more than one block's batch lands at a boundary,
    the flush folds up to ``max_blocks`` of them into one merged check
    (:func:`repro.crypto.schnorr.batch_verify_many`) — one
    ``multi_pow`` for the whole boundary, with the hot public keys
    deduplicated across blocks — and delivers each block its own
    verdict in enqueue order.

    Scope note: with one coordinator shard exactly one mempool carries
    signature batches, so production flushes hold a single batch and
    the merge path stays idle (the E16 unsharded win comes from the v2
    ``multi_pow`` engine underneath).  The sharded market (PR 5) runs
    M order-carrying coordinator chains whose mempools all seal on the
    same half-grid boundary, so production flushes routinely fold M
    registration batches into one ``multi_pow`` —
    ``MarketReport.aggregator_merge_rate()`` reports how often, from
    the ``stats`` counters; ``tests/market/test_cross_shard.py`` and
    ``tests/market/test_verify_aggregation.py`` pin the behaviour.

    Because verdicts are delivered at the same simulated time the
    seals ran, and a failed merge falls back to per-batch (and the
    callers fall back to per-order) isolation, commit/abort decisions
    and report bytes are identical to unaggregated verification; only
    wall-clock changes.  ``schedule`` is any callable that runs a
    thunk later in the current instant (the market passes
    ``simulator.schedule_at(simulator.now, ...)``).  In ``stats``,
    ``isolation_fallbacks`` counts flush chunks in which at least one
    batch failed and isolation ran — merged or not.
    """

    def __init__(self, schedule, max_blocks: int = 8):
        if max_blocks < 1:
            raise ConsensusError("max_blocks must be at least 1")
        self._schedule = schedule
        self.max_blocks = max_blocks
        self._queue: list[tuple[list, object, object, int]] = []
        self._flush_scheduled = False
        # Telemetry hook (repro.telemetry.Telemetry or None): flushes
        # report their merge width and pair counts; strictly
        # observational, one attribute check when off.
        self.telemetry = None
        # Pluggable verification: when set, ``verify_many`` receives
        # each flush chunk as ``[(key, owner, items), ...]`` and must
        # return one verdict per batch in order.  The ``processes``
        # execution backend plugs a partitioned verifier in here (each
        # worker genuinely verifies only the batches it owns and
        # exchanges the rest as SealVerdict messages); ``None`` means
        # the merged :func:`schnorr_batch_verify_many` check, and both
        # produce identical verdicts (the merged check succeeds iff
        # every batch is individually valid, and its per-batch
        # fallback *is* individual validity).
        self.verify_many = None
        self.stats = {
            "flushes": 0,
            "batches": 0,
            "merged_flushes": 0,
            "merged_batches": 0,
            "isolation_fallbacks": 0,
        }

    def enqueue(self, items: list, on_verdict, key=None, owner: int = 0) -> None:
        """Queue one block's signature batch; ``on_verdict(ok)`` later.

        ``items`` are ``(public_key, message, signature)`` triples (one
        block's worth); the callback fires during this instant's flush.
        ``key``/``owner`` identify the batch for a plugged
        ``verify_many`` (the market keys by ``(chain_id, seq)`` and
        owns by shard); both are inert on the default path.
        """
        self._queue.append((items, on_verdict, key, owner))
        self.stats["batches"] += 1
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._schedule(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        queue, self._queue = self._queue, []
        self.stats["flushes"] += 1
        for start in range(0, len(queue), self.max_blocks):
            chunk = queue[start : start + self.max_blocks]
            batches = [items for items, _, _, _ in chunk]
            if self.telemetry is not None:
                self.telemetry.verify_flush(
                    len(chunk), sum(len(items) for items in batches)
                )
            if len(chunk) > 1:
                self.stats["merged_flushes"] += 1
                self.stats["merged_batches"] += len(chunk)
            if self.verify_many is not None:
                verdicts = self.verify_many(
                    [(key, owner, items) for items, _, key, owner in chunk]
                )
            else:
                verdicts = schnorr_batch_verify_many(batches)
            if not all(verdicts):
                self.stats["isolation_fallbacks"] += 1
            for (_, on_verdict, _, _), verdict in zip(chunk, verdicts):
                on_verdict(verdict)


@dataclass(frozen=True)
class HandoverCertificate:
    """A quorum of epoch ``k`` vouching for the validators of epoch ``k+1``."""

    from_epoch: int
    to_epoch: int
    new_public_keys: tuple[PublicKey, ...]
    signatures: tuple[QuorumSignature, ...]

    @staticmethod
    def message(from_epoch: int, to_epoch: int, new_keys: tuple[PublicKey, ...]) -> bytes:
        """Canonical byte encoding of the handover statement."""
        return hash_concat(
            b"repro/handover",
            from_epoch.to_bytes(8, "big"),
            to_epoch.to_bytes(8, "big"),
            *[key.to_bytes() for key in new_keys],
        )


def make_handover(old: ValidatorSet, new: ValidatorSet) -> HandoverCertificate:
    """Have ``old``'s quorum certify ``new`` as its successor."""
    if new.epoch != old.epoch + 1:
        raise ConsensusError("handover must advance the epoch by one")
    message = HandoverCertificate.message(old.epoch, new.epoch, new.public_keys())
    return HandoverCertificate(
        from_epoch=old.epoch,
        to_epoch=new.epoch,
        new_public_keys=new.public_keys(),
        signatures=old.quorum_sign(message),
    )
