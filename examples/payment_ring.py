"""Payment rings: deals vs atomic swaps head to head.

A payment ring (party i pays party i+1 around a cycle) is the one
workload that *both* mechanisms handle: it is swap-expressible, so we
can run the same exchange as a Herlihy PODC'18 atomic swap (hashed
timelock contracts, secrets) and as a timelock cross-chain deal
(escrow + path-signature votes) and compare the on-chain bills.

Run:  python examples/payment_ring.py
"""

from repro import CompliantParty, DealExecutor, ProtocolKind, auto_config
from repro.analysis.costs import commit_signature_verifications
from repro.analysis.tables import render_table
from repro.baselines.swap import SwapExecutor, SwapParty
from repro.workloads.generators import ring_deal


def run_ring(n: int) -> list:
    # As an atomic swap.
    spec, keys = ring_deal(n=n)
    swap = SwapExecutor(spec, [SwapParty(kp, label) for label, kp in keys.items()]).run()
    # As a timelock deal.
    spec2, keys2 = ring_deal(n=n)
    parties = [CompliantParty(kp, label) for label, kp in keys2.items()]
    deal = DealExecutor(spec2, parties, auto_config(spec2, ProtocolKind.TIMELOCK)).run()
    assert swap.completed and deal.all_committed()
    swap_gas = swap.gas_total()
    deal_gas = deal.gas_total()
    return [
        n,
        swap_gas.sstore,
        swap_gas.sig_verify,
        f"{swap.duration:.0f}",
        deal_gas.sstore,
        commit_signature_verifications(deal),
        f"{deal.timeline.settled_at:.0f}",
    ]


def main() -> None:
    rows = [run_ring(n) for n in (2, 3, 4, 6)]
    print(
        render_table(
            ["n", "swap writes", "swap sig.ver", "swap time",
             "deal writes", "deal sig.ver", "deal time"],
            rows,
            title="Ring exchange: atomic swap vs timelock deal",
        )
    )
    print()
    print(
        "Swaps replace signatures with hashlocks (0 verifications) and\n"
        "are cheaper on the workloads they can express; deals pay an\n"
        "O(m n^2) signature bill for strictly more expressive exchanges\n"
        "(brokerage, auctions) that swaps reject outright (see\n"
        "examples/ticket_auction.py)."
    )
    # And the inexpressibility itself:
    from repro.baselines.swap import is_swap_expressible
    from repro.workloads.scenarios import ticket_broker_deal

    broker, _ = ticket_broker_deal()
    print(f"\nticket-broker deal swap-expressible? {is_swap_expressible(broker)}")


if __name__ == "__main__":
    main()
