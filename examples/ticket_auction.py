"""The §9 auction: a deal no atomic swap can express.

Alice auctions one theater ticket.  Bidders seal their bids with
commit-reveal commitments (so neither can observe the other's bid),
reveal, and the clearing step turns the result into a cross-chain
deal: every bid flows through Alice, the losing bids flow back, the
ticket goes to the winner, and Alice keeps the winning bid.

Because Alice transfers coins she did not own at the start, the deal
is *not* expressible as an atomic cross-chain swap — the paper's core
argument for deals as a strictly more powerful abstraction.

Run:  python examples/ticket_auction.py
"""

from repro import (
    CompliantParty,
    DealExecutor,
    ProtocolKind,
    auction_deal,
    auto_config,
    evaluate_outcome,
)
from repro.analysis.tables import render_matrix
from repro.baselines.swap import is_swap_expressible
from repro.workloads.scenarios import SealedBid

BIDS = {"bob": 40, "carol": 55, "dave": 35}


def main() -> None:
    # --- sealed bidding (commit-reveal, §9 footnote) -----------------
    sealed = {
        name: SealedBid.seal(name, amount, salt=name.encode())
        for name, amount in BIDS.items()
    }
    print("sealed commitments:")
    for name, bid in sealed.items():
        print(f"  {name:5s} -> {bid.commitment.hex()[:16]}…")
    for name, amount in BIDS.items():
        assert sealed[name].check_reveal(amount, name.encode()), "bad reveal"
    print(f"reveals check out: {dict(sorted(BIDS.items()))}")
    print()

    # --- clearing: the auction becomes a deal -------------------------
    spec, keys, winner = auction_deal(BIDS)
    print(render_matrix(spec, title="The auction as a deal matrix"))
    print()
    print(f"swap-expressible?  {is_swap_expressible(spec)} "
          "(Alice moves assets she never owned)")
    print()

    # --- execution (CBC protocol this time) ---------------------------
    parties = [CompliantParty(keypair, label) for label, keypair in keys.items()]
    config = auto_config(spec, ProtocolKind.CBC)
    result = DealExecutor(spec, parties, config, validators_f=1).run()
    report = evaluate_outcome(result)

    coins = result.final_holdings[("coinchain", "coins")]
    tickets = result.final_holdings[("ticketchain", "tickets")]
    print(f"winner: {winner} (bid {BIDS[winner]})")
    print(f"deal committed: {result.all_committed()}, safety: {report.safety_ok}")
    for label, keypair in keys.items():
        holdings = []
        if coins.get(keypair.address):
            holdings.append(f"{coins[keypair.address]} coins")
        if tickets.get(keypair.address):
            holdings.append("the ticket")
        print(f"  {label:5s} ends with {', '.join(holdings) or 'nothing'}")


if __name__ == "__main__":
    main()
