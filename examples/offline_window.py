"""The §5.3 offline window: why timelock users want watchtowers.

Timelock deals resolve by deadline arithmetic, so a party that is
unreachable at the wrong moment can lose assets *without any safety
violation* — failing to claim in time is itself a deviation.  Here we
drive Alice and Carol offline right after they cast their votes:
nobody forwards Bob's vote to the ticket chain, the ticket escrow
times out, and Bob keeps the tickets AND collects the coins.

Then we attach watchtowers (the Lightning-network mitigation the
paper cites) and watch the same attack fizzle.

Run:  python examples/offline_window.py
"""

from repro.adversary.dos import offline_window_scenario
from repro.core.outcomes import evaluate_outcome


def describe(result) -> None:
    who = {result.spec.label(p): p for p in result.spec.parties}
    tickets = result.final_holdings[("ticketchain", "tickets")]
    coins = result.final_holdings[("coinchain", "coins")]
    print(f"  escrow outcomes: "
          f"tickets={result.escrow_states['bob-tickets'].value}, "
          f"coins={result.escrow_states['carol-coins'].value}")
    for name in ("alice", "bob", "carol"):
        print(
            f"  {name:5s}: {coins.get(who[name], 0):3d} coins, "
            f"{len(tickets.get(who[name], frozenset()))} tickets"
        )


def main() -> None:
    print("=== Attack: Alice and Carol DoS'd right after voting ===")
    attacked = offline_window_scenario(offline_from=5.0)
    describe(attacked.result)
    report = evaluate_outcome(
        attacked.result,
        compliant={p for p in attacked.result.spec.parties
                   if attacked.result.spec.label(p) == "bob"},
    )
    print(f"  Property 1 for compliant Bob: {report.safety_ok} "
          "(the victims deviated by not claiming in time)")
    print()

    print("=== Same attack, victims covered by watchtowers ===")
    defended = offline_window_scenario(offline_from=5.0, with_watchtowers=True)
    describe(defended.result)
    report = evaluate_outcome(defended.result)
    print(f"  deal committed: {defended.result.all_committed()}, "
          f"safety for everyone: {report.safety_ok}")
    print()
    print(
        "The watchtower watched Bob's vote appear on the coin chain and\n"
        "forwarded it (path-extended with its client's signature) to the\n"
        "ticket chain before the deadline — the exchange completed as\n"
        "agreed despite the denial-of-service."
    )


if __name__ == "__main__":
    main()
