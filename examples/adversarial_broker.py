"""Adversarial commerce in action: deviating counterparties.

The paper's core safety claim (Property 1) is *local and selfish*:
a compliant party ends up no worse off no matter how others behave.
This example runs the ticket-broker deal against a gallery of
deviations — a buyer who never votes, a seller who walks away, a
broker who short-changes — under both commit protocols, and shows the
compliant parties' verdicts each time.

Run:  python examples/adversarial_broker.py
"""

from repro import (
    CompliantParty,
    DealExecutor,
    ProtocolKind,
    auto_config,
    evaluate_outcome,
    ticket_broker_deal,
)
from repro.adversary.strategies import (
    CrashAfterEscrowParty,
    NoVoteParty,
    ShortChangeParty,
    WalkAwayParty,
)
from repro.analysis.tables import render_table

SCENARIOS = [
    ("honest run", {}),
    ("Carol never votes", {"carol": NoVoteParty}),
    ("Bob walks away", {"bob": WalkAwayParty}),
    ("Alice short-changes Bob", {"alice": ShortChangeParty}),
    ("Bob crashes after escrow", {"bob": CrashAfterEscrowParty}),
    ("Bob AND Carol misbehave", {"bob": NoVoteParty, "carol": WalkAwayParty}),
]


def run_scenario(assignment: dict, kind: ProtocolKind):
    spec, keys = ticket_broker_deal()
    parties = []
    compliant = set()
    for label, keypair in keys.items():
        strategy = assignment.get(label, CompliantParty)
        parties.append(strategy(keypair, label))
        if strategy is CompliantParty:
            compliant.add(keypair.address)
    config = auto_config(spec, kind)
    result = DealExecutor(spec, parties, config, seed=1).run()
    report = evaluate_outcome(result, compliant)
    if result.all_committed():
        outcome = "committed"
    elif result.all_refunded():
        outcome = "all refunded"
    else:
        outcome = "mixed: " + "/".join(s.value for s in result.escrow_states.values())
    return outcome, report


def main() -> None:
    for kind in (ProtocolKind.TIMELOCK, ProtocolKind.CBC):
        rows = []
        for name, assignment in SCENARIOS:
            outcome, report = run_scenario(assignment, kind)
            rows.append(
                [
                    name,
                    outcome,
                    "OK" if report.safety_ok else "VIOLATED",
                    "OK" if report.weak_liveness_ok else "VIOLATED",
                ]
            )
        print(
            render_table(
                ["scenario", "outcome", "safety (compliant)", "no locked assets"],
                rows,
                title=f"=== {kind.value} protocol ===",
            )
        )
        print()
    print(
        "Every row shows 'OK': whatever the deviators do, compliant parties\n"
        "either complete the exchange or keep (recover) what they started with."
    )


if __name__ == "__main__":
    main()
