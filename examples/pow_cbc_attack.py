"""The §6.2 private-mining attack on a proof-of-work CBC.

A CBC built on Nakamoto consensus lacks finality: Alice publicly
votes commit while privately mining a fork containing her abort vote.
If her fork reaches the required confirmation depth in time, she
holds two contradictory 'proofs' — and a passive escrow contract
cannot tell which fork is canonical, so *both verify*.

This example mounts the attack once (showing the contradictory proofs
verifying), sweeps the success rate against confirmation depth, and
shows the BFT certified blockchain rejecting the same attacker.

Run:  python examples/pow_cbc_attack.py
"""

from repro.adversary.mining import PrivateMiningAttack, attack_success_rate
from repro.analysis.tables import render_table
from repro.chain.contracts import CallContext, _TxJournal
from repro.chain.gas import GasMeter
from repro.chain.ledger import Chain
from repro.consensus.bft import DealStatus
from repro.core.proofs import verify_pow_proof
from repro.crypto.keys import KeyPair, Wallet
from repro.sim.simulator import Simulator

DEAL = b"pow-attack-demo" + b"\x00" * 17
KEYS = {name: KeyPair.from_label(name) for name in ("alice", "bob", "carol")}
PLIST = tuple(kp.address for kp in KEYS.values())


def contract_view():
    """A throwaway contract context for proof verification."""
    chain = Chain("demo", Simulator(), Wallet())
    return CallContext(chain, PLIST[0], _TxJournal(GasMeter()), 1)


def main() -> None:
    # Mount one attack with a strong attacker and shallow proofs.
    for seed in range(100):
        attack = PrivateMiningAttack(
            deal_id=DEAL, plist=PLIST, attacker=KEYS["alice"].address,
            alpha=0.35, confirmations=2, seed=seed,
        )
        outcome = attack.run()
        if outcome.succeeded:
            break
    print(f"attack succeeded on seed {seed}: "
          f"attacker mined {outcome.attacker_blocks} private blocks "
          f"vs {outcome.honest_blocks} honest")
    commit_ok = verify_pow_proof(contract_view(), outcome.honest_proof, DEAL, PLIST, 0)
    abort_ok = verify_pow_proof(contract_view(), outcome.fake_proof, DEAL, PLIST, 2)
    print(f"  honest proof of COMMIT verifies: {commit_ok is DealStatus.COMMITTED}")
    print(f"  fake   proof of ABORT  verifies: {abort_ok is DealStatus.ABORTED}")
    print("  -> Alice can halt her outgoing escrows AND claim her incoming ones.")
    print()

    # The defence: require more confirmations.
    rows = []
    for alpha in (0.10, 0.25, 0.40):
        row = [f"{alpha:.2f}"]
        for depth in (0, 1, 2, 4, 6):
            rate = attack_success_rate(
                DEAL, PLIST, KEYS["alice"].address,
                alpha=alpha, confirmations=depth, trials=200,
            )
            row.append(f"{rate:.2f}")
        rows.append(row)
    print(
        render_table(
            ["attacker share \\ confirmations", "0", "1", "2", "4", "6"],
            rows,
            title="Fake-proof success rate vs confirmation depth",
        )
    )
    print()
    print(
        "Requiring confirmations makes cheating expensive (the paper: the\n"
        "number required should scale with the deal's value), but only a\n"
        "BFT CBC gives finality: its quorum certificates cannot be forged\n"
        "by anyone holding fewer than 2f+1 validator keys."
    )


if __name__ == "__main__":
    main()
