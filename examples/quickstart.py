"""Quickstart: run the paper's ticket-broker deal end to end.

Alice brokers Bob's theater tickets to Carol (Figure 1 of the paper):
Carol pays 101 coins, Bob receives 100, Alice keeps 1 as commission,
and the tickets flow Bob -> Alice -> Carol.  We execute the deal with
the fully decentralized timelock commit protocol and check the
paper's safety and liveness properties on the outcome.

Run:  python examples/quickstart.py
"""

from repro import (
    CompliantParty,
    DealExecutor,
    ProtocolKind,
    auto_config,
    evaluate_outcome,
    ticket_broker_deal,
)
from repro.analysis.tables import render_matrix


def main() -> None:
    # 1. Specify the deal (the Figure 1 matrix).
    spec, keys = ticket_broker_deal()
    print(render_matrix(spec, title="The deal (rows = outgoing transfers)"))
    print()

    # 2. Create the parties.  CompliantParty follows the protocol;
    #    see repro.adversary for parties that do not.
    parties = [CompliantParty(keypair, label) for label, keypair in keys.items()]

    # 3. Derive safe timing parameters (Δ, t0) from the substrate and
    #    run the deal on the simulated chains and network.
    config = auto_config(spec, ProtocolKind.TIMELOCK)
    result = DealExecutor(spec, parties, config, seed=0).run()

    # 4. Inspect the outcome.
    print(f"escrow outcomes : { {a: s.value for a, s in result.escrow_states.items()} }")
    print(f"all committed   : {result.all_committed()}")

    coins = result.final_holdings[("coinchain", "coins")]
    tickets = result.final_holdings[("ticketchain", "tickets")]
    for label, keypair in keys.items():
        print(
            f"  {label:5s} ends with {coins.get(keypair.address, 0):3d} coins "
            f"and tickets {sorted(tickets.get(keypair.address, frozenset())) or '-'}"
        )

    # 5. Check the paper's properties.
    report = evaluate_outcome(result)
    print(f"safety (Property 1)      : {report.safety_ok}")
    print(f"weak liveness (Property 2): {report.weak_liveness_ok}")
    print(f"strong liveness (Property 3): {report.strong_liveness_ok}")

    # 6. The cost profile the paper analyses in §7.
    gas = result.gas_by_phase()
    for phase in ("escrow", "transfer", "commit"):
        breakdown = gas[phase]
        print(
            f"phase {phase:8s}: {breakdown.sstore:3d} storage writes, "
            f"{breakdown.sig_verify:2d} signature verifications, "
            f"{breakdown.total:6d} gas"
        )


if __name__ == "__main__":
    main()
