"""A deal-market storm: hundreds of concurrent deals on shared chains.

The per-deal executor answers "is one deal safe?"; the market runtime
(:mod:`repro.market`) answers "what happens when a thousand deals hit
four chains at once?".  This quickstart runs two small markets:

* a **calm** market — comfortable balances, a few adversaries mixed in
  (a vote withholder stalls its deal into a timeout, a forged order is
  rejected at the sealing block);
* a **storm** — the same machinery with starved account balances, so
  concurrent deals overdraw shared escrow accounts and the
  first-committed-wins rule plays out hundreds of times.

Both runs end with every conservation invariant checked: token supply
constant, the escrow book's ledger exactly backing its holdings, no
double-spent escrow, uniform outcomes across chains.

Run:  python examples/market_storm.py
"""

from repro.market import open_market
from repro.workloads.market import MarketProfile, MarketWorkload


def run(title: str, profile: MarketProfile) -> None:
    workload = MarketWorkload(profile)
    report = open_market(workload).run()
    print(f"--- {title} ---")
    print(report.render())
    assert report.stuck == 0
    assert not report.invariant_violations
    print()


def main() -> None:
    run("calm market (smoke profile)", MarketProfile.smoke())
    run("contended storm (starved balances)", MarketProfile.contended())
    print("all conservation invariants held in both runs")


if __name__ == "__main__":
    main()
